#ifndef ARBITER_SAT_CLAUSE_ARENA_H_
#define ARBITER_SAT_CLAUSE_ARENA_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "sat/types.h"

/// \file clause_arena.h
/// Arena allocation for clauses.  All clauses live in one contiguous
/// `uint32_t` buffer; a clause is identified by a `ClauseRef` — its
/// word offset into that buffer — instead of a heap pointer.  This
/// removes one pointer-chase (and one cache line) per watched-clause
/// visit in `Propagate()`, and makes compaction a simple two-space
/// copy.
///
/// Per-clause layout (`kHeaderWords` header words, then the literals):
///
///   word 0   size << 3 | learnt | deleted << 1 | reloced << 2
///   word 1   float activity bits (forwarding ClauseRef once reloced)
///   word 2   LBD (literal block distance; 0 for problem clauses)
///   word 3+  literal codes
///
/// Deletion only sets a header bit and counts the words as wasted; the
/// solver triggers `Reloc`-based compaction into a fresh arena when
/// wasted words dominate (see Solver::MaybeGarbageCollect).

namespace arbiter::sat {

/// Word offset of a clause in its arena.
using ClauseRef = uint32_t;

inline constexpr ClauseRef kClauseRefUndef = 0xFFFFFFFFu;

class ClauseArena {
 public:
  static constexpr int kHeaderWords = 3;

  /// Allocates a clause over the given literals and returns its ref.
  ClauseRef Alloc(const std::vector<Lit>& lits, bool learnt) {
    const ClauseRef ref = static_cast<ClauseRef>(mem_.size());
    mem_.push_back((static_cast<uint32_t>(lits.size()) << 3) |
                   (learnt ? 1u : 0u));
    mem_.push_back(FloatBits(0.0f));
    mem_.push_back(0);  // LBD
    for (const Lit l : lits) {
      mem_.push_back(static_cast<uint32_t>(l.code()));
    }
    return ref;
  }

  int Size(ClauseRef c) const { return static_cast<int>(mem_[c] >> 3); }
  bool Learnt(ClauseRef c) const { return (mem_[c] & 1u) != 0; }
  bool Deleted(ClauseRef c) const { return (mem_[c] & 2u) != 0; }

  /// Marks the clause deleted and counts its words as wasted.
  void MarkDeleted(ClauseRef c) {
    ARBITER_DCHECK(!Deleted(c));
    mem_[c] |= 2u;
    wasted_ += static_cast<size_t>(kHeaderWords) + Size(c);
  }

  /// Shrinks the clause to `new_size` literals (root-level literal
  /// stripping).  The trailing words become wasted.
  void Shrink(ClauseRef c, int new_size) {
    const int old_size = Size(c);
    ARBITER_DCHECK(new_size >= 1 && new_size <= old_size);
    mem_[c] = (mem_[c] & 7u) | (static_cast<uint32_t>(new_size) << 3);
    wasted_ += static_cast<size_t>(old_size - new_size);
  }

  float Activity(ClauseRef c) const { return BitsFloat(mem_[c + 1]); }
  void SetActivity(ClauseRef c, float a) { mem_[c + 1] = FloatBits(a); }

  uint32_t Lbd(ClauseRef c) const { return mem_[c + 2]; }
  void SetLbd(ClauseRef c, uint32_t lbd) { mem_[c + 2] = lbd; }

  Lit LitAt(ClauseRef c, int i) const {
    return Lit::FromCode(static_cast<int>(mem_[c + kHeaderWords + i]));
  }
  void SetLitAt(ClauseRef c, int i, Lit l) {
    mem_[c + kHeaderWords + i] = static_cast<uint32_t>(l.code());
  }
  void SwapLits(ClauseRef c, int i, int j) {
    std::swap(mem_[c + kHeaderWords + i], mem_[c + kHeaderWords + j]);
  }

  /// Words in use (including wasted ones) / wasted by deletions.
  size_t size() const { return mem_.size(); }
  size_t wasted() const { return wasted_; }

  void Reserve(size_t words) { mem_.reserve(words); }

  // --- two-space compaction ---

  bool Reloced(ClauseRef c) const { return (mem_[c] & 4u) != 0; }
  ClauseRef Forward(ClauseRef c) const {
    ARBITER_DCHECK(Reloced(c));
    return mem_[c + 1];
  }

  /// Copies the clause into `to` (once; later calls return the same
  /// forwarding ref) and returns its new ref.  Deleted clauses must
  /// not be relocated — drop the reference instead.
  ClauseRef Reloc(ClauseRef c, ClauseArena* to) {
    if (Reloced(c)) return Forward(c);
    ARBITER_DCHECK(!Deleted(c));
    const size_t words = static_cast<size_t>(kHeaderWords) + Size(c);
    const ClauseRef fresh = static_cast<ClauseRef>(to->mem_.size());
    to->mem_.insert(to->mem_.end(), mem_.begin() + c,
                    mem_.begin() + c + words);
    mem_[c] |= 4u;
    mem_[c + 1] = fresh;
    return fresh;
  }

 private:
  static uint32_t FloatBits(float f) {
    uint32_t u;
    std::memcpy(&u, &f, sizeof(u));
    return u;
  }
  static float BitsFloat(uint32_t u) {
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
  }

  std::vector<uint32_t> mem_;
  size_t wasted_ = 0;
};

}  // namespace arbiter::sat

#endif  // ARBITER_SAT_CLAUSE_ARENA_H_
