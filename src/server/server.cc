#include "server/server.h"

#include <utility>

#include "util/string_util.h"

namespace arbiter::server {

namespace {

/// Consumes a leading word from *rest; returns false if none.
bool EatWord(std::string* rest, std::string* word) {
  *rest = Trim(*rest);
  if (rest->empty()) return false;
  size_t space = rest->find(' ');
  if (space == std::string::npos) {
    *word = *rest;
    rest->clear();
  } else {
    *word = rest->substr(0, space);
    *rest = Trim(rest->substr(space + 1));
  }
  return true;
}

StatementOutcome ErrorOutcome(const Status& status) {
  StatementOutcome out;
  out.kind = StatementOutcome::Kind::kError;
  out.code = status.code();
  out.text = status.message();
  return out;
}

StatementOutcome ValueOutcome(std::string text) {
  StatementOutcome out;
  out.kind = StatementOutcome::Kind::kValue;
  out.text = std::move(text);
  return out;
}

StatementOutcome OkOutcome() { return StatementOutcome(); }

/// Runs one script statement against `write` (never null here: the
/// batch classifier routes scripts with mutating statements to the
/// write path, and read-only scripts contain only asserts and
/// conditionals, handled below).
StatementOutcome ExecuteScriptStatement(const ScriptStatement& stmt,
                                        const BeliefStore& snapshot,
                                        BeliefStore* write, bool* mutated) {
  BeliefStore* store = write;
  const BeliefStore& reader = write != nullptr ? *write : snapshot;
  auto mutating = [&](const Status& status) -> StatementOutcome {
    if (store == nullptr) {
      return ErrorOutcome(Status::Unsupported(
          "mutating statement reached a read-only execution"));
    }
    if (!status.ok()) return ErrorOutcome(status);
    *mutated = true;
    return OkOutcome();
  };
  switch (stmt.kind) {
    case ScriptStatement::Kind::kDefine:
      if (store == nullptr) return mutating(Status::OK());
      return mutating(store->Define(stmt.base, stmt.formula));
    case ScriptStatement::Kind::kChange:
      if (store == nullptr) return mutating(Status::OK());
      return mutating(store->Apply(stmt.base, stmt.op_name, stmt.formula));
    case ScriptStatement::Kind::kUndo:
      if (store == nullptr) return mutating(Status::OK());
      return mutating(store->Undo(stmt.base));
    case ScriptStatement::Kind::kSetBackend:
      if (store == nullptr) return mutating(Status::OK());
      return mutating(store->SetBackend(stmt.formula));
    case ScriptStatement::Kind::kSetWeight: {
      if (store == nullptr) return mutating(Status::OK());
      int64_t weight = 0;
      if (!ParseInt64(stmt.formula, &weight)) {
        return ErrorOutcome(Status::InvalidArgument(
            "weight must be an integer, got '" + stmt.formula + "'"));
      }
      return mutating(store->SetWeight(stmt.base, weight));
    }
    case ScriptStatement::Kind::kAssertEntails:
    case ScriptStatement::Kind::kAssertConsistent:
    case ScriptStatement::Kind::kAssertEquivalent: {
      // Asserts run through the snapshot-read family: they never grow
      // the vocabulary, so a batch of asserts is a read-only batch.
      Result<bool> held = Status::Internal("unset");
      if (stmt.kind == ScriptStatement::Kind::kAssertEntails) {
        held = reader.QueryEntails(stmt.base, stmt.formula);
      } else if (stmt.kind == ScriptStatement::Kind::kAssertConsistent) {
        held = reader.QueryConsistentWith(stmt.base, stmt.formula);
      } else {
        held = reader.QueryEquivalentTo(stmt.base, stmt.formula);
      }
      if (!held.ok()) return ErrorOutcome(held.status());
      if (*held) return OkOutcome();
      StatementOutcome out;
      out.kind = StatementOutcome::Kind::kFailed;
      out.text = "assertion failed: " + RenderStatement(stmt);
      return out;
    }
    case ScriptStatement::Kind::kConditional: {
      Result<bool> guard = reader.QueryEntails(stmt.base, stmt.formula);
      if (!guard.ok()) return ErrorOutcome(guard.status());
      if (!*guard) return OkOutcome();  // guard false: skipped
      return ExecuteScriptStatement(stmt.inner[0], snapshot, write, mutated);
    }
  }
  return ErrorOutcome(Status::Internal("unreachable statement kind"));
}

StatementOutcome ExecuteOne(const ServerStatement& stmt,
                            const BeliefStore& snapshot, BeliefStore* write,
                            const BeliefServer* server, bool* mutated) {
  const BeliefStore& reader = write != nullptr ? *write : snapshot;
  switch (stmt.kind) {
    case ServerStatement::Kind::kNoop:
      return OkOutcome();
    case ServerStatement::Kind::kScript:
      return ExecuteScriptStatement(stmt.script, snapshot, write, mutated);
    case ServerStatement::Kind::kQueryEntails:
    case ServerStatement::Kind::kQueryConsistent:
    case ServerStatement::Kind::kQueryEquivalent: {
      Result<bool> held = Status::Internal("unset");
      if (stmt.kind == ServerStatement::Kind::kQueryEntails) {
        held = reader.QueryEntails(stmt.base, stmt.formula);
      } else if (stmt.kind == ServerStatement::Kind::kQueryConsistent) {
        held = reader.QueryConsistentWith(stmt.base, stmt.formula);
      } else {
        held = reader.QueryEquivalentTo(stmt.base, stmt.formula);
      }
      if (!held.ok()) return ErrorOutcome(held.status());
      return ValueOutcome(*held ? "true" : "false");
    }
    case ServerStatement::Kind::kQueryModels: {
      Result<std::string> models = reader.QueryModels(stmt.base);
      if (!models.ok()) return ErrorOutcome(models.status());
      return ValueOutcome(*models);
    }
    case ServerStatement::Kind::kQueryDist: {
      Result<std::string> dist =
          reader.QueryDistance(stmt.base, stmt.op_name, stmt.formula);
      if (!dist.ok()) return ErrorOutcome(dist.status());
      return ValueOutcome(*dist);
    }
    case ServerStatement::Kind::kStats: {
      if (server == nullptr) {
        return ErrorOutcome(
            Status::Unsupported("no cache counters in this execution"));
      }
      OperatorResultCache::Stats stats = server->CacheStats();
      return ValueOutcome(
          "hits=" + std::to_string(stats.hits) +
          " misses=" + std::to_string(stats.misses) +
          " evictions=" + std::to_string(stats.evictions) +
          " skipped=" + std::to_string(stats.skipped) +
          " size=" + std::to_string(stats.size) +
          " capacity=" + std::to_string(stats.capacity));
    }
  }
  return ErrorOutcome(Status::Internal("unreachable statement kind"));
}

std::vector<StatementOutcome> ExecuteParsed(
    const std::vector<Result<ServerStatement>>& parsed,
    const BeliefStore& snapshot, BeliefStore* write,
    const BeliefServer* server, bool* mutated) {
  std::vector<StatementOutcome> outcomes;
  outcomes.reserve(parsed.size());
  for (const Result<ServerStatement>& stmt : parsed) {
    if (!stmt.ok()) {
      outcomes.push_back(ErrorOutcome(stmt.status()));
      continue;
    }
    outcomes.push_back(ExecuteOne(*stmt, snapshot, write, server, mutated));
  }
  return outcomes;
}

}  // namespace

std::string RenderOutcome(const StatementOutcome& outcome) {
  switch (outcome.kind) {
    case StatementOutcome::Kind::kOk:
      return "ok";
    case StatementOutcome::Kind::kValue:
      return "val " + outcome.text;
    case StatementOutcome::Kind::kFailed:
      return "fail " + outcome.text;
    case StatementOutcome::Kind::kError:
      return std::string("err ") + StatusCodeName(outcome.code) + " " +
             outcome.text;
  }
  return "err internal unreachable outcome kind";
}

Result<ServerStatement> ParseServerStatement(const std::string& line) {
  ServerStatement out;
  std::string rest = Trim(line);
  if (rest.empty() || rest[0] == '#') {
    out.kind = ServerStatement::Kind::kNoop;
    return out;
  }
  std::string word;
  std::string peek = rest;
  EatWord(&peek, &word);
  if (word == "stats") {
    if (!peek.empty()) {
      return Status::InvalidArgument("trailing input after 'stats'");
    }
    out.kind = ServerStatement::Kind::kStats;
    return out;
  }
  if (word == "query") {
    rest = peek;
    if (!EatWord(&rest, &out.base)) {
      return Status::InvalidArgument("expected base name after 'query'");
    }
    std::string relation;
    if (!EatWord(&rest, &relation)) {
      return Status::InvalidArgument(
          "expected a relation (entails | consistent-with | equivalent-to "
          "| models | dist) after the base name");
    }
    if (relation == "models") {
      if (!rest.empty()) {
        return Status::InvalidArgument("trailing input after 'models'");
      }
      out.kind = ServerStatement::Kind::kQueryModels;
      return out;
    }
    if (relation == "dist") {
      if (!EatWord(&rest, &out.op_name)) {
        return Status::InvalidArgument("expected an operator after 'dist'");
      }
      if (rest.empty()) {
        return Status::InvalidArgument("expected a formula after the operator");
      }
      out.kind = ServerStatement::Kind::kQueryDist;
      out.formula = rest;
      return out;
    }
    if (rest.empty()) {
      return Status::InvalidArgument("expected a formula after '" + relation +
                                     "'");
    }
    out.formula = rest;
    if (relation == "entails") {
      out.kind = ServerStatement::Kind::kQueryEntails;
    } else if (relation == "consistent-with") {
      out.kind = ServerStatement::Kind::kQueryConsistent;
    } else if (relation == "equivalent-to") {
      out.kind = ServerStatement::Kind::kQueryEquivalent;
    } else {
      return Status::InvalidArgument(
          "unknown query relation '" + relation +
          "' (entails | consistent-with | equivalent-to | models | dist)");
    }
    return out;
  }
  Result<BeliefScript> script = ParseScript(rest);
  if (!script.ok()) return script.status();
  if (script->statements.size() != 1) {
    return Status::InvalidArgument("expected exactly one statement per line");
  }
  out.kind = ServerStatement::Kind::kScript;
  out.script = script->statements[0];
  return out;
}

bool StatementMutates(const ServerStatement& statement) {
  if (statement.kind != ServerStatement::Kind::kScript) return false;
  const ScriptStatement* stmt = &statement.script;
  while (stmt->kind == ScriptStatement::Kind::kConditional) {
    stmt = &stmt->inner[0];
  }
  switch (stmt->kind) {
    case ScriptStatement::Kind::kDefine:
    case ScriptStatement::Kind::kChange:
    case ScriptStatement::Kind::kUndo:
    case ScriptStatement::Kind::kSetBackend:
    case ScriptStatement::Kind::kSetWeight:
      return true;
    default:
      return false;
  }
}

std::vector<StatementOutcome> ExecuteStatements(
    const BeliefStore& snapshot, BeliefStore* write,
    const std::vector<std::string>& lines, const BeliefServer* server,
    bool* mutated) {
  std::vector<Result<ServerStatement>> parsed;
  parsed.reserve(lines.size());
  for (const std::string& line : lines) {
    parsed.push_back(ParseServerStatement(line));
  }
  bool local_mutated = false;
  std::vector<StatementOutcome> outcomes =
      ExecuteParsed(parsed, snapshot, write, server, &local_mutated);
  if (mutated != nullptr) *mutated = local_mutated;
  return outcomes;
}

BeliefServer::BeliefServer(Options options)
    : cache_(std::make_shared<OperatorResultCache>(options.cache_capacity)) {}

BeliefServer::Hosted* BeliefServer::GetOrCreate(const std::string& name) {
  MutexLock lock(&stores_mu_);
  std::unique_ptr<Hosted>& slot = stores_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Hosted>();
    auto store = std::make_shared<BeliefStore>();
    store->SetResultCache(cache_);
    slot->snapshot = std::move(store);
  }
  return slot.get();
}

const BeliefServer::Hosted* BeliefServer::FindHosted(
    const std::string& name) const {
  MutexLock lock(&stores_mu_);
  auto it = stores_.find(name);
  return it == stores_.end() ? nullptr : it->second.get();
}

BatchResult BeliefServer::ExecuteBatch(
    const std::string& store_name,
    const std::vector<std::string>& statements) {
  // One parse pass for the whole batch, which also classifies it:
  // batches without a mutating statement run lock-free on a snapshot.
  std::vector<Result<ServerStatement>> parsed;
  parsed.reserve(statements.size());
  bool writes = false;
  for (const std::string& line : statements) {
    parsed.push_back(ParseServerStatement(line));
    if (parsed.back().ok() && StatementMutates(*parsed.back())) writes = true;
  }

  Hosted* hosted = GetOrCreate(store_name);
  BatchResult out;
  bool mutated = false;
  if (!writes) {
    std::shared_ptr<const BeliefStore> snapshot;
    {
      MutexLock lock(&hosted->ptr_mu);
      snapshot = hosted->snapshot;
      out.epoch = hosted->epoch;
    }
    out.outcomes = ExecuteParsed(parsed, *snapshot, nullptr, this, &mutated);
    return out;
  }

  // Single writer per store; readers keep serving the old epoch while
  // this batch works on its private copy.
  MutexLock writer(&hosted->writer_mu);
  std::shared_ptr<const BeliefStore> snapshot;
  {
    MutexLock lock(&hosted->ptr_mu);
    snapshot = hosted->snapshot;
    out.epoch = hosted->epoch;
  }
  BeliefStore working = *snapshot;  // fresh backend, shared result cache
  out.outcomes = ExecuteParsed(parsed, working, &working, this, &mutated);
  if (mutated) {
    auto next = std::make_shared<const BeliefStore>(std::move(working));
    MutexLock lock(&hosted->ptr_mu);
    hosted->snapshot = std::move(next);
    hosted->epoch = out.epoch + 1;
    out.committed = true;
  }
  return out;
}

OperatorResultCache::Stats BeliefServer::CacheStats() const {
  return cache_->stats();
}

std::vector<std::string> BeliefServer::StoreNames() const {
  MutexLock lock(&stores_mu_);
  std::vector<std::string> names;
  names.reserve(stores_.size());
  for (const auto& [name, hosted] : stores_) names.push_back(name);
  return names;
}

Result<std::string> BeliefServer::SaveStore(
    const std::string& store_name) const {
  const Hosted* hosted = FindHosted(store_name);
  if (hosted == nullptr) {
    return Status::NotFound("no hosted store named \"" + store_name + "\"");
  }
  std::shared_ptr<const BeliefStore> snapshot;
  {
    MutexLock lock(&hosted->ptr_mu);
    snapshot = hosted->snapshot;
  }
  return snapshot->Save();
}

uint64_t BeliefServer::StoreEpoch(const std::string& store_name) const {
  const Hosted* hosted = FindHosted(store_name);
  if (hosted == nullptr) return 0;
  MutexLock lock(&hosted->ptr_mu);
  return hosted->epoch;
}

BatchResult ReplayBatch(const BeliefStore& snapshot,
                        const std::vector<std::string>& lines,
                        BeliefStore* final_state) {
  BeliefStore working = snapshot;
  BatchResult out;
  bool mutated = false;
  out.outcomes =
      ExecuteStatements(working, &working, lines, nullptr, &mutated);
  out.committed = mutated;
  if (final_state != nullptr) *final_state = std::move(working);
  return out;
}

}  // namespace arbiter::server
