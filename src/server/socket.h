#ifndef ARBITER_SERVER_SOCKET_H_
#define ARBITER_SERVER_SOCKET_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/server.h"
#include "util/status.h"

/// \file socket.h
/// AF_UNIX transport: a listener thread accepts connections and serves
/// each with the shared frame loop (session.h) on its own thread.  All
/// sessions hit the same BeliefServer, so its snapshot/epoch model is
/// what keeps them coherent.

namespace arbiter::server {

class UnixSocketServer {
 public:
  explicit UnixSocketServer(BeliefServer* server);
  ~UnixSocketServer();

  UnixSocketServer(const UnixSocketServer&) = delete;
  UnixSocketServer& operator=(const UnixSocketServer&) = delete;

  /// Binds and listens on `path` (unlinking a stale socket file first)
  /// and starts the accept thread.
  Status Start(const std::string& path);

  /// Closes the listener, shuts down live connections, joins all
  /// threads, and removes the socket file.  Idempotent.
  void Stop();

  /// True once any session received a SHUTDOWN frame.
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  BeliefServer* server_;
  std::string path_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};

  std::mutex conns_mu_;
  std::vector<int> live_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace arbiter::server

#endif  // ARBITER_SERVER_SOCKET_H_
