#include "sat/all_sat.h"

#include <algorithm>

namespace arbiter::sat {

int64_t EnumerateAllSat(SatEngine* solver, const AllSatOptions& options,
                        const std::function<bool(uint64_t)>& on_model) {
  ARBITER_CHECK(solver != nullptr);
  ARBITER_CHECK(options.num_project > 0 && options.num_project <= 64);
  ARBITER_CHECK(options.num_project <= solver->NumVars());

  int64_t count = 0;
  while (options.max_models <= 0 || count < options.max_models) {
    SolveStatus status = solver->Solve();
    if (status != SolveStatus::kSat) break;
    uint64_t bits = 0;
    for (Var v = 0; v < options.num_project; ++v) {
      if (solver->ModelValue(v)) bits |= 1ULL << v;
    }
    ++count;
    if (!on_model(bits)) break;
    // Block this projected assignment.
    std::vector<Lit> blocking;
    blocking.reserve(options.num_project);
    for (Var v = 0; v < options.num_project; ++v) {
      blocking.push_back(Lit(v, /*negated=*/solver->ModelValue(v)));
    }
    if (!solver->AddClause(std::move(blocking))) break;  // space exhausted
  }
  return count;
}

std::vector<uint64_t> CollectAllSat(SatEngine* solver,
                                    const AllSatOptions& options) {
  std::vector<uint64_t> models;
  EnumerateAllSat(solver, options, [&](uint64_t bits) {
    models.push_back(bits);
    return true;
  });
  std::sort(models.begin(), models.end());
  return models;
}

}  // namespace arbiter::sat
