// Loyal-assignment checking (paper, Section 3).
//
// Headline reproduction finding (experiment E4, EXPERIMENTS.md): the
// paper asserts its odist (max) assignment is "clearly" loyal, and
// Section 4 claims the same for wdist.  Exhaustive checking over every
// pair of knowledge bases shows that *no* distance-aggregate assignment
// (min, max, or sum) is loyal in the plain union semantics: condition
// (2) fails whenever psi1 ⊆ psi2 strictly separates two worlds that
// psi2 ties, because Mod(psi1 ∨ psi2) = Mod(psi2) and the sub-base's
// strict preference vanishes.  The weighted semantics of Section 4
// repairs exactly this: there ∨ *sums* weights, so the sub-base keeps
// contributing, wdist(ψ̃1 ∨ ψ̃2) = wdist(ψ̃1) + wdist(ψ̃2), and
// strictness survives (see weighted_postulates_test.cc: F1–F8 hold).

#include "model/loyal.h"

#include <gtest/gtest.h>

#include "model/distance.h"

namespace arbiter {
namespace {

TEST(LoyalTest, MinMaxAndSumAllViolateCondition2) {
  for (int n = 2; n <= 3; ++n) {
    for (const auto& [name, assignment] :
         {std::pair<const char*, PreorderAssignment>{"min", DalalPreorder},
          {"max", OverallDistPreorder},
          {"sum", SumDistPreorder}}) {
      auto violation = CheckLoyalty(assignment, n);
      ASSERT_TRUE(violation.has_value())
          << name << " unexpectedly loyal at n=" << n;
      EXPECT_EQ(violation->condition, 2)
          << name << ": " << violation->Describe();
    }
  }
}

TEST(LoyalTest, CanonicalSubsetTieWitness) {
  // psi1 = {00}, psi2 = {00, 01}: psi1 strictly prefers I = 00 over
  // J = 01, psi2 ties them, and Mod(psi1 ∨ psi2) = Mod(psi2), so the
  // union also ties — condition (2) demands strictness.  This single
  // witness defeats min, max, and sum at once.
  ModelSet psi1 = ModelSet::FromMasks({0b00}, 2);
  ModelSet psi2 = ModelSet::FromMasks({0b00, 0b01}, 2);
  const uint64_t i = 0b00, j = 0b01;
  // Strict under psi1 for all three aggregates.
  EXPECT_LT(MinDist(psi1, i), MinDist(psi1, j));
  EXPECT_LT(OverallDist(psi1, i), OverallDist(psi1, j));
  EXPECT_LT(SumDist(psi1, i), SumDist(psi1, j));
  // Tie under psi2 for all three.
  EXPECT_EQ(MinDist(psi2, i), MinDist(psi2, j));
  EXPECT_EQ(OverallDist(psi2, i), OverallDist(psi2, j));
  EXPECT_EQ(SumDist(psi2, i), SumDist(psi2, j));
  // The union *is* psi2, so the tie persists: condition (2) fails.
  EXPECT_EQ(psi1.Union(psi2), psi2);
}

TEST(LoyalTest, MaxCondition2CounterexampleWithoutSubset) {
  // A witness where neither base contains the other, specific to max:
  // psi1 = {000}, psi2 = {011, 111}, I = 000, J = 100.
  ModelSet psi1 = ModelSet::FromMasks({0b000}, 3);
  ModelSet psi2 = ModelSet::FromMasks({0b011, 0b111}, 3);
  ModelSet both = psi1.Union(psi2);
  const uint64_t i = 0b000, j = 0b100;
  EXPECT_LT(OverallDist(psi1, i), OverallDist(psi1, j));  // strict
  EXPECT_LE(OverallDist(psi2, i), OverallDist(psi2, j));  // weak
  EXPECT_EQ(OverallDist(both, i), OverallDist(both, j))
      << "union ties: condition (2) demands strictness";
}

TEST(LoyalTest, ConstantAssignmentIsLoyal) {
  // Positive control for Theorem 3.1: a psi-independent total order
  // satisfies conditions (1)-(3) vacuously.
  PreorderAssignment constant = [](const ModelSet& psi) {
    return TotalPreorder(psi.num_terms(), [](uint64_t bits) {
      return static_cast<double>(bits);
    });
  };
  for (int n = 2; n <= 3; ++n) {
    auto violation = CheckLoyalty(constant, n);
    EXPECT_FALSE(violation.has_value())
        << "n=" << n << ": " << violation->Describe();
  }
}

TEST(LoyalTest, CardinalityAssignmentIsLoyal) {
  // Another psi-independent order (by |I|): loyal for the same reason.
  PreorderAssignment by_cardinality = [](const ModelSet& psi) {
    return TotalPreorder(psi.num_terms(), [](uint64_t bits) {
      return static_cast<double>(PopCount(bits));
    });
  };
  EXPECT_FALSE(CheckLoyalty(by_cardinality, 2).has_value());
}

TEST(LoyalTest, ViolationDescribeMentionsCondition) {
  auto violation = CheckLoyalty(DalalPreorder, 2);
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->Describe().find("loyalty condition"),
            std::string::npos);
}

TEST(LoyalTest, PreordersAreTotalAndTransitive) {
  ModelSet psi = ModelSet::FromMasks({0b01, 0b10}, 2);
  TotalPreorder order = SumDistPreorder(psi);
  for (uint64_t a = 0; a < 4; ++a) {
    EXPECT_TRUE(order.Leq(a, a));
    for (uint64_t b = 0; b < 4; ++b) {
      EXPECT_TRUE(order.Leq(a, b) || order.Leq(b, a));  // total
      EXPECT_EQ(order.Less(a, b), order.Leq(a, b) && !order.Leq(b, a));
      for (uint64_t c = 0; c < 4; ++c) {
        if (order.Leq(a, b) && order.Leq(b, c)) {
          EXPECT_TRUE(order.Leq(a, c));  // transitive
        }
      }
    }
  }
}

TEST(LoyalTest, MinOfRespectsRanks) {
  ModelSet psi = ModelSet::FromMasks({0b00}, 2);
  TotalPreorder order = SumDistPreorder(psi);
  ModelSet candidates = ModelSet::FromMasks({0b01, 0b11}, 2);
  EXPECT_EQ(order.MinOf(candidates), ModelSet::FromMasks({0b01}, 2));
}

TEST(LoyalTest, MinOfEmptySetIsEmpty) {
  TotalPreorder order = SumDistPreorder(ModelSet::FromMasks({0b00}, 2));
  EXPECT_TRUE(order.MinOf(ModelSet(2)).empty());
}

}  // namespace
}  // namespace arbiter
