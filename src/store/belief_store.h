#ifndef ARBITER_STORE_BELIEF_STORE_H_
#define ARBITER_STORE_BELIEF_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "kb/knowledge_base.h"
#include "logic/vocabulary.h"
#include "util/status.h"

/// \file belief_store.h
/// A small transactional repository of named belief bases — the
/// database-facing surface of the library.  Each base is a knowledge
/// base over the store's shared vocabulary; changes are applied
/// through any registered theory change operator and every applied
/// change is journaled, so they can be undone.
///
///   BeliefStore store;
///   store.Define("jury", "g & a & (g & a -> v)");
///   store.Apply("jury", "dalal", "!v");          // revise in place
///   store.Entails("jury", "g");                  // -> true
///   store.Undo("jury");                          // back to the start
///
/// The vocabulary grows as formulas mention new terms; bases defined
/// earlier are transparently re-evaluated over the grown vocabulary
/// (their formulas don't mention the new terms, so their models simply
/// leave them free).

namespace arbiter {

/// One journaled change applied to a base.
struct ChangeRecord {
  std::string op_name;
  std::string evidence_text;
};

class BeliefStore {
 public:
  BeliefStore() = default;

  const Vocabulary& vocabulary() const { return vocab_; }

  /// Defines (or redefines) a named base from formula text.
  /// Redefinition clears the base's history.
  Status Define(const std::string& name, const std::string& formula_text);

  /// True iff a base with this name exists.
  bool Contains(const std::string& name) const;

  /// Removes a base.
  Status Drop(const std::string& name);

  /// Names of all bases, sorted.
  std::vector<std::string> Names() const;

  /// Current contents of a base (re-evaluated over the current
  /// vocabulary if it has grown since the base was last touched).
  Result<KnowledgeBase> Get(const std::string& name) const;

  /// Applies `target <- target <op> evidence` in place and journals
  /// the change.  `op_name` is any registry name ("dalal", "winslett",
  /// "revesz-max", "arbitration-max", "two-sided-dalal", ...).
  Status Apply(const std::string& target, const std::string& op_name,
               const std::string& evidence_text);

  /// Reverts the most recent Apply on the base.  Fails if there is
  /// nothing to undo.
  Status Undo(const std::string& target);

  /// Number of undoable changes on a base (0 if unknown base).
  int HistoryDepth(const std::string& name) const;

  /// The journal of a base, oldest first.
  std::vector<ChangeRecord> History(const std::string& name) const;

  /// Semantic entailment: does the base imply the formula?
  Result<bool> Entails(const std::string& name,
                       const std::string& formula_text);

  /// Consistency: is base ∧ formula satisfiable?
  Result<bool> ConsistentWith(const std::string& name,
                              const std::string& formula_text);

  /// KM counterfactual via update (the Ramsey test): "if `antecedent`
  /// were made true, would `consequent` hold?" — evaluated as
  /// (base ⋄ antecedent) ⊨ consequent with Winslett's update.
  Result<bool> Counterfactual(const std::string& name,
                              const std::string& antecedent_text,
                              const std::string& consequent_text);

  /// Human-readable listing of every base and its models.
  std::string Dump() const;

  /// Serializes the store (vocabulary + base formulas) to a line-based
  /// text format.  Journals are not persisted.
  std::string Save() const;

  /// Reconstructs a store from Save() output.
  static Result<BeliefStore> Load(const std::string& text);

 private:
  struct Entry {
    Formula formula;
    std::vector<Formula> undo_stack;   // previous formulas
    std::vector<ChangeRecord> journal;  // applied changes
  };

  Result<Formula> ParseOverVocabulary(const std::string& text);
  Result<const Entry*> Find(const std::string& name) const;

  Vocabulary vocab_;
  std::map<std::string, Entry> bases_;
};

}  // namespace arbiter

#endif  // ARBITER_STORE_BELIEF_STORE_H_
