#include "solve/dalal_sat.h"

#include "enc/totalizer.h"
#include "enc/tseitin.h"
#include "proof/certify.h"
#include "sat/all_sat.h"
#include "sat/preprocessor.h"
#include "solve/sat_bridge.h"

namespace arbiter::solve {

using sat::Lit;
using sat::SatPreprocessor;
using sat::SolveStatus;

namespace {

// Satisfiability for the degenerate input checks, certifying the
// UNSAT verdict when certification is on.
bool InputSatisfiable(const Formula& f, int num_terms, bool certify,
                      SatRevisionResult* result) {
  if (!certify) return SatIsSatisfiable(f, num_terms);
  const CertifiedSatResult r = SatIsSatisfiableCertified(f, num_terms);
  if (r.certify_attempted) {
    ++(r.certified ? result->unsat_steps_certified
                   : result->unsat_steps_uncertified);
  }
  return r.sat;
}

}  // namespace

SatRevisionResult SatDalalRevise(const Formula& psi, const Formula& mu,
                                 int num_terms, int64_t max_models,
                                 const std::vector<int64_t>& metric) {
  ARBITER_CHECK(num_terms >= 1 && num_terms <= 63);
  SatRevisionResult result;
  const bool certify = proof::CertificationEnabled();

  // Degenerate cases first.
  if (!InputSatisfiable(mu, num_terms, certify, &result)) {
    ++result.num_sat_calls;
    return result;  // Mod(μ) empty ⇒ revision empty.
  }
  if (!InputSatisfiable(psi, num_terms, certify, &result)) {
    result.num_sat_calls += 2;
    result.psi_unsat = true;
    result.min_distance = 0;
    // Convention: ψ unsatisfiable ⇒ result is Mod(μ).
    SatPreprocessor solver;
    enc::TseitinEncoder encoder(&solver);
    encoder.ReserveInputVars(num_terms);
    encoder.Assert(mu);
    solver.FreezeRange(0, num_terms);  // AllSAT projects onto the inputs
    sat::AllSatOptions options;
    options.num_project = num_terms;
    options.max_models = max_models + 1;
    result.models = sat::CollectAllSat(&solver, options);
    if (static_cast<int64_t>(result.models.size()) > max_models) {
      result.models.resize(max_models);
      result.truncated = true;
    }
    return result;
  }

  // Joint solver: x = model of μ on [0, n), y = model of ψ on [n, 2n).
  // Preprocessing runs after the two Asserts (eliminating Tseitin
  // auxiliaries) and before the diff/totalizer layers, whose fresh
  // variables are then never elimination candidates.  With
  // certification off the wrapper is a passthrough to the plain
  // pipeline (one untaken branch per AddClause).
  proof::CertifyingSolver solver(certify);
  enc::TseitinEncoder encoder(&solver);
  encoder.ReserveInputVars(2 * num_terms);
  encoder.Assert(mu);
  encoder.Assert(ShiftVars(psi, num_terms));
  solver.FreezeRange(0, 2 * num_terms);
  solver.Preprocess();
  std::vector<Lit> diffs = RepeatByWeights(
      MakeDiffBits(&solver, num_terms, num_terms), metric);
  enc::Totalizer counter(&solver, diffs);

  // Binary search the least k with a solution at distance <= k.  Both
  // inputs are satisfiable, so k = diameter (Σ weights) always works.
  const int diameter = static_cast<int>(diffs.size());
  int lo = 0;
  int hi = diameter;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    ++result.num_sat_calls;
    SolveStatus status =
        solver.SolveAssuming({counter.AtMost(mid)});
    if (status == SolveStatus::kSat) {
      hi = mid;
    } else {
      // Certify the "no solution within mid" half-step now — after the
      // search, AllSAT blocking clauses (not formula-implied) would
      // poison the recorded derivation.
      if (certify) {
        ++(solver.CertifyLastUnsat().ok ? result.unsat_steps_certified
                                        : result.unsat_steps_uncertified);
      }
      lo = mid + 1;
    }
  }
  result.min_distance = lo;

  // Freeze the optimum and enumerate result models projected onto x.
  if (lo < diameter) solver.AddUnit(counter.AtMost(lo));
  sat::AllSatOptions options;
  options.num_project = num_terms;
  options.max_models = max_models + 1;
  result.models = sat::CollectAllSat(&solver, options);
  result.num_sat_calls += static_cast<int>(result.models.size()) + 1;
  if (static_cast<int64_t>(result.models.size()) > max_models) {
    result.models.resize(max_models);
    result.truncated = true;
  }
  return result;
}

}  // namespace arbiter::solve
