#include "model/preorder.h"

#include "util/logging.h"

namespace arbiter {

TotalPreorder::TotalPreorder(int num_terms, const RankFn& rank)
    : num_terms_(num_terms) {
  ARBITER_CHECK(num_terms >= 0 && num_terms <= kMaxEnumTerms);
  const uint64_t space = 1ULL << num_terms;
  ranks_.resize(space);
  for (uint64_t i = 0; i < space; ++i) ranks_[i] = rank(i);
}

ModelSet TotalPreorder::MinOf(const ModelSet& s) const {
  ARBITER_CHECK(s.num_terms() == num_terms_);
  if (s.empty()) return ModelSet(num_terms_);
  double best = ranks_[s[0]];
  for (uint64_t m : s) best = std::min(best, ranks_[m]);
  std::vector<uint64_t> out;
  for (uint64_t m : s) {
    if (ranks_[m] == best) out.push_back(m);
  }
  return ModelSet::FromMasks(std::move(out), num_terms_);
}

ModelSet MinBy(const ModelSet& s, const RankFn& rank) {
  if (s.empty()) return ModelSet(s.num_terms());
  double best = rank(s[0]);
  std::vector<double> ranks;
  ranks.reserve(s.size());
  for (uint64_t m : s) {
    double r = rank(m);
    ranks.push_back(r);
    best = std::min(best, r);
  }
  std::vector<uint64_t> out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (ranks[i] == best) out.push_back(s[i]);
  }
  return ModelSet::FromMasks(std::move(out), s.num_terms());
}

ModelSet MinByInt(const ModelSet& s,
                  const std::function<int64_t(uint64_t)>& rank) {
  if (s.empty()) return ModelSet(s.num_terms());
  int64_t best = rank(s[0]);
  std::vector<int64_t> ranks;
  ranks.reserve(s.size());
  for (uint64_t m : s) {
    int64_t r = rank(m);
    ranks.push_back(r);
    best = std::min(best, r);
  }
  std::vector<uint64_t> out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (ranks[i] == best) out.push_back(s[i]);
  }
  return ModelSet::FromMasks(std::move(out), s.num_terms());
}

}  // namespace arbiter
