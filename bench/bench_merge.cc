// Belief-merging benchmarks (experiment E10): Σ vs GMax vs max
// aggregation as the number of sources and the vocabulary grow.

#include <benchmark/benchmark.h>

#include "change/merge.h"
#include "util/random.h"

namespace {

using namespace arbiter;

std::vector<ModelSet> MakeSources(int k, int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<ModelSet> sources;
  for (int s = 0; s < k; ++s) {
    std::vector<uint64_t> masks;
    for (uint64_t m = 0; m < (1ULL << n); ++m) {
      if (rng.NextBool(0.1)) masks.push_back(m);
    }
    if (masks.empty()) masks.push_back(rng.NextBelow(1ULL << n));
    sources.push_back(ModelSet::FromMasks(std::move(masks), n));
  }
  return sources;
}

void RunMerge(benchmark::State& state, MergeAggregate aggregate) {
  const int k = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  std::vector<ModelSet> sources = MakeSources(k, n, k * 100 + n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Merge(sources, aggregate));
  }
}

void BM_MergeSum(benchmark::State& state) {
  RunMerge(state, MergeAggregate::kSum);
}
BENCHMARK(BM_MergeSum)
    ->Args({2, 10})
    ->Args({4, 10})
    ->Args({8, 10})
    ->Args({16, 10})
    ->Args({4, 12})
    ->Args({4, 14});

void BM_MergeGMax(benchmark::State& state) {
  RunMerge(state, MergeAggregate::kGMax);
}
BENCHMARK(BM_MergeGMax)
    ->Args({2, 10})
    ->Args({4, 10})
    ->Args({8, 10})
    ->Args({16, 10})
    ->Args({4, 12});

void BM_MergeMax(benchmark::State& state) {
  RunMerge(state, MergeAggregate::kMax);
}
BENCHMARK(BM_MergeMax)
    ->Args({2, 10})
    ->Args({4, 10})
    ->Args({8, 10})
    ->Args({16, 10});

void BM_MergeUnderConstraint(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int n = 10;
  std::vector<ModelSet> sources = MakeSources(k, n, k);
  Rng rng(k + 7);
  std::vector<uint64_t> cm;
  for (uint64_t m = 0; m < (1ULL << n); ++m) {
    if (rng.NextBool(0.5)) cm.push_back(m);
  }
  ModelSet constraint = ModelSet::FromMasks(std::move(cm), n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Merge(sources, constraint, MergeAggregate::kSum));
  }
}
BENCHMARK(BM_MergeUnderConstraint)->Arg(2)->Arg(8);

}  // namespace
