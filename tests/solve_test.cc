// Tests for the SAT-based scalable algorithms: differential against
// the enumeration-based operators on small vocabularies, plus
// large-vocabulary smoke tests beyond the enumeration wall.

#include <gtest/gtest.h>

#include "change/fitting.h"
#include "change/revision.h"
#include "logic/generator.h"
#include "logic/parser.h"
#include "logic/semantics.h"
#include "model/distance.h"
#include "solve/arbitration_sat.h"
#include "solve/dalal_sat.h"
#include "solve/sat_bridge.h"
#include "solve/satoh_sat.h"

namespace arbiter::solve {
namespace {

TEST(SatBridgeTest, ShiftVarsRenames) {
  Vocabulary v = Vocabulary::Synthetic(2);
  Formula f = MustParse("p0 & !p1", &v);
  Formula shifted = ShiftVars(f, 3);
  EXPECT_EQ(shifted.MaxVar(), 4);
  EXPECT_EQ(EnumerateModels(shifted, 5).size(),
            EnumerateModels(f, 2).size() * 8u);
}

TEST(SatBridgeTest, SatIsSatisfiableAgreesWithBruteForce) {
  Rng rng(101);
  RandomFormulaOptions options;
  options.num_terms = 5;
  for (int i = 0; i < 100; ++i) {
    Formula f = RandomFormula(&rng, options);
    EXPECT_EQ(SatIsSatisfiable(f, 5), IsSatisfiable(f, 5)) << i;
  }
}

TEST(SatDalalTest, MatchesEnumerationOnRandomInputs) {
  Rng rng(202);
  DalalRevision enum_op;
  RandomFormulaOptions options;
  options.num_terms = 5;
  for (int i = 0; i < 60; ++i) {
    Formula psi = RandomFormula(&rng, options);
    Formula mu = RandomFormula(&rng, options);
    SatRevisionResult sat_result = SatDalalRevise(psi, mu, 5);
    ModelSet expected = enum_op.Change(ModelSet::FromFormula(psi, 5),
                                       ModelSet::FromFormula(mu, 5));
    EXPECT_EQ(ModelSet::FromMasks(sat_result.models, 5), expected)
        << "round " << i;
    if (!expected.empty() && IsSatisfiable(psi, 5)) {
      EXPECT_EQ(sat_result.min_distance,
                MinDist(ModelSet::FromFormula(psi, 5), expected[0]));
    }
  }
}

TEST(SatDalalTest, UnsatInputs) {
  Vocabulary v = Vocabulary::Synthetic(3);
  Formula contradiction = MustParse("p0 & !p0", &v);
  Formula tautology = MustParse("p1 | !p1", &v);
  SatRevisionResult r1 = SatDalalRevise(tautology, contradiction, 3);
  EXPECT_TRUE(r1.models.empty());
  EXPECT_EQ(r1.min_distance, -1);
  SatRevisionResult r2 = SatDalalRevise(contradiction, tautology, 3);
  EXPECT_TRUE(r2.psi_unsat);
  EXPECT_EQ(r2.models.size(), 8u) << "psi unsat -> Mod(mu)";
}

TEST(SatDalalTest, TruncationCap) {
  Vocabulary v = Vocabulary::Synthetic(4);
  Formula psi = MustParse("p0", &v);
  Formula mu = Formula::True();
  SatRevisionResult r = SatDalalRevise(psi, mu, 4, /*max_models=*/3);
  EXPECT_TRUE(r.truncated);
  EXPECT_EQ(r.models.size(), 3u);
}

TEST(SatDalalTest, ScalesPastEnumerationWall) {
  // 40 variables: 2^40 interpretations, far beyond kMaxEnumTerms.
  // psi: all variables true; mu: at least the first variable false.
  const int n = 40;
  std::vector<Formula> all_true;
  for (int i = 0; i < n; ++i) all_true.push_back(Formula::Var(i));
  Formula psi = And(all_true);
  Formula mu = Not(Formula::Var(0));
  SatRevisionResult r = SatDalalRevise(psi, mu, n, /*max_models=*/4);
  EXPECT_EQ(r.min_distance, 1);
  ASSERT_EQ(r.models.size(), 1u);
  EXPECT_EQ(r.models[0], LowMask(n) & ~1ULL) << "flip only p0";
}

TEST(SatSatohTest, MatchesEnumerationOnRandomInputs) {
  Rng rng(909);
  SatohRevision enum_op;
  RandomFormulaOptions options;
  options.num_terms = 5;
  for (int i = 0; i < 60; ++i) {
    Formula psi = RandomFormula(&rng, options);
    Formula mu = RandomFormula(&rng, options);
    SatSatohResult sat_result = SatSatohRevise(psi, mu, 5);
    ModelSet expected = enum_op.Change(ModelSet::FromFormula(psi, 5),
                                       ModelSet::FromFormula(mu, 5));
    EXPECT_EQ(ModelSet::FromMasks(sat_result.models, 5), expected)
        << "round " << i;
  }
}

TEST(SatSatohTest, MinimalDiffsAreAnAntichain) {
  Rng rng(911);
  RandomFormulaOptions options;
  options.num_terms = 6;
  for (int i = 0; i < 30; ++i) {
    Formula psi = RandomFormula(&rng, options);
    Formula mu = RandomFormula(&rng, options);
    SatSatohResult r = SatSatohRevise(psi, mu, 6);
    for (uint64_t a : r.minimal_diffs) {
      for (uint64_t b : r.minimal_diffs) {
        if (a != b) {
          EXPECT_NE(a & b, a) << "diff " << a << " ⊆ " << b;
        }
      }
    }
  }
}

TEST(SatSatohTest, ConsistentInputsGiveEmptyDiff) {
  Vocabulary v = Vocabulary::Synthetic(4);
  Formula psi = MustParse("p0 & p1", &v);
  Formula mu = MustParse("p0", &v);
  SatSatohResult r = SatSatohRevise(psi, mu, 4);
  EXPECT_EQ(r.minimal_diffs, std::vector<uint64_t>{0});
  // Result is Mod(psi & mu) = Mod(psi).
  EXPECT_EQ(ModelSet::FromMasks(r.models, 4),
            ModelSet::FromFormula(psi, 4));
}

TEST(SatSatohTest, ScalesPastEnumerationWall) {
  // 28 variables; psi: all true, mu: p0 and p1 both false.  The only
  // minimal diff flips exactly p0 and p1.
  const int n = 28;
  std::vector<Formula> all_true;
  for (int i = 0; i < n; ++i) all_true.push_back(Formula::Var(i));
  Formula psi = And(all_true);
  Formula mu = And(Not(Formula::Var(0)), Not(Formula::Var(1)));
  SatSatohResult r = SatSatohRevise(psi, mu, n, 16, 4);
  ASSERT_EQ(r.minimal_diffs.size(), 1u);
  EXPECT_EQ(r.minimal_diffs[0], 0b11u);
  ASSERT_EQ(r.models.size(), 1u);
  EXPECT_EQ(r.models[0], LowMask(n) & ~0b11ULL);
}

TEST(SatSatohTest, UnsatInputs) {
  Vocabulary v = Vocabulary::Synthetic(3);
  Formula contradiction = MustParse("p0 & !p0", &v);
  Formula tautology = Formula::True();
  EXPECT_TRUE(SatSatohRevise(tautology, contradiction, 3).models.empty());
  SatSatohResult r = SatSatohRevise(contradiction, tautology, 3);
  EXPECT_TRUE(r.psi_unsat);
  EXPECT_EQ(r.models.size(), 8u);
}

TEST(SatOdistTest, MatchesEnumerationOnRandomInputs) {
  Rng rng(303);
  RandomFormulaOptions options;
  options.num_terms = 5;
  for (int i = 0; i < 60; ++i) {
    Formula psi = RandomFormula(&rng, options);
    if (!IsSatisfiable(psi, 5)) {
      EXPECT_EQ(SatOverallDist(psi, 5, 0), -1);
      continue;
    }
    ModelSet models = ModelSet::FromFormula(psi, 5);
    uint64_t point = rng.NextBelow(32);
    uint64_t witness = 0;
    int got = SatOverallDist(psi, 5, point, &witness);
    EXPECT_EQ(got, OverallDist(models, point)) << i;
    EXPECT_TRUE(models.Contains(witness));
    EXPECT_EQ(Dist(point, witness), got) << "witness attains the max";
  }
}

TEST(CegarTest, MatchesEnumerationFittingOnRandomInputs) {
  Rng rng(404);
  MaxFitting enum_op;
  RandomFormulaOptions options;
  options.num_terms = 4;
  for (int i = 0; i < 50; ++i) {
    Formula psi = RandomFormula(&rng, options);
    Formula mu = RandomFormula(&rng, options);
    CegarResult r = CegarMaxFitting(psi, mu, 4);
    ModelSet spsi = ModelSet::FromFormula(psi, 4);
    ModelSet smu = ModelSet::FromFormula(mu, 4);
    ModelSet expected = enum_op.Change(spsi, smu);
    EXPECT_EQ(ModelSet::FromMasks(r.models, 4), expected) << "round " << i;
    if (!expected.empty()) {
      EXPECT_EQ(r.optimal_value, OverallDist(spsi, expected[0]));
      EXPECT_TRUE(expected.Contains(r.optimal_model));
    } else {
      EXPECT_EQ(r.optimal_value, -1);
    }
  }
}

TEST(CegarTest, ArbitrationMatchesEnumeration) {
  Rng rng(505);
  ArbitrationOperator enum_arb = MakeMaxArbitration();
  RandomFormulaOptions options;
  options.num_terms = 4;
  for (int i = 0; i < 30; ++i) {
    Formula a = RandomFormula(&rng, options);
    Formula b = RandomFormula(&rng, options);
    if (!IsSatisfiable(Or(a, b), 4)) continue;
    CegarResult r = CegarMaxArbitration(a, b, 4);
    ModelSet expected = enum_arb.Change(ModelSet::FromFormula(a, 4),
                                        ModelSet::FromFormula(b, 4));
    EXPECT_EQ(ModelSet::FromMasks(r.models, 4), expected) << "round " << i;
  }
}

TEST(CegarTest, LargeVocabularyArbitration) {
  // Two parties 30 variables apart: the optimal compromise sits at
  // max-distance 15 from both.
  const int n = 30;
  std::vector<Formula> lits_a, lits_b;
  for (int i = 0; i < n; ++i) {
    lits_a.push_back(Not(Formula::Var(i)));
    lits_b.push_back(Formula::Var(i));
  }
  Formula a = And(lits_a);  // all false
  Formula b = And(lits_b);  // all true
  CegarResult r =
      CegarMaxArbitration(a, b, n, /*max_models=*/1);
  EXPECT_EQ(r.optimal_value, 15);
  EXPECT_EQ(PopCount(r.optimal_model), 15);
  EXPECT_TRUE(r.truncated);
}

TEST(CegarTest, UnsatInputsReturnMinusOne) {
  Vocabulary v = Vocabulary::Synthetic(3);
  Formula contradiction = MustParse("p0 & !p0", &v);
  Formula sat = MustParse("p1", &v);
  EXPECT_EQ(CegarMaxFitting(contradiction, sat, 3).optimal_value, -1);
  EXPECT_EQ(CegarMaxFitting(sat, contradiction, 3).optimal_value, -1);
}

TEST(CegarTest, IterationCountIsReported) {
  Vocabulary v = Vocabulary::Synthetic(3);
  Formula psi = MustParse("p0 & p1", &v);
  CegarResult r = CegarMaxFitting(psi, Formula::True(), 3);
  EXPECT_GT(r.iterations, 0);
}

}  // namespace
}  // namespace arbiter::solve
