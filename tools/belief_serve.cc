// belief_serve — the arbitration server.
//
// Hosts many named BeliefStores behind the framed batch protocol
// (src/server/frame.h) on stdin/stdout and, optionally, an AF_UNIX
// socket.  Readers get snapshot-consistent epochs; writers serialize
// per store; operator results are cached across all sessions.
//
//   belief_serve                          serve stdin/stdout
//   belief_serve --socket /tmp/arb.sock   ... plus a local socket
//   belief_serve --socket /tmp/arb.sock --no-stdio
//   belief_serve --cache-capacity 4096
//
// Try:
//   printf 'BATCH 1 main 2\ndefine jury := g & a\nassert jury entails g\n\
//   SHUTDOWN 2\n' | ./build/tools/belief_serve
//
// The process exits on stdin EOF, a SHUTDOWN frame (any transport), or
// SIGINT/SIGTERM — always cleanly: sessions are joined and the socket
// file removed.

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>

#include "server/server.h"
#include "server/session.h"
#include "server/socket.h"
#include "util/string_util.h"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void HandleSignal(int) { g_signal = 1; }

int Usage(std::FILE* out, int code) {
  std::fprintf(out,
               "usage: belief_serve [--socket <path>] [--no-stdio] "
               "[--cache-capacity <n>]\n"
               "  --socket <path>       also serve an AF_UNIX socket\n"
               "  --no-stdio            socket only (requires --socket)\n"
               "  --cache-capacity <n>  operator-result cache entries "
               "(default 1024)\n");
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  bool use_stdio = true;
  arbiter::server::BeliefServer::Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--no-stdio") {
      use_stdio = false;
    } else if (arg == "--cache-capacity" && i + 1 < argc) {
      int64_t capacity = 0;
      if (!arbiter::ParseInt64(argv[++i], &capacity) || capacity <= 0) {
        std::fprintf(stderr, "belief_serve: --cache-capacity wants a "
                             "positive integer, got '%s'\n", argv[i]);
        return 2;
      }
      options.cache_capacity = static_cast<size_t>(capacity);
    } else if (arg == "--help" || arg == "-h") {
      return Usage(stdout, 0);
    } else {
      std::fprintf(stderr, "belief_serve: unknown argument '%s'\n",
                   arg.c_str());
      return Usage(stderr, 2);
    }
  }
  if (!use_stdio && socket_path.empty()) {
    std::fprintf(stderr, "belief_serve: --no-stdio requires --socket\n");
    return 2;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
#ifdef SIGPIPE
  std::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill us
#endif

  arbiter::server::BeliefServer server(options);
  arbiter::server::UnixSocketServer socket_server(&server);
  if (!socket_path.empty()) {
    arbiter::Status status = socket_server.Start(socket_path);
    if (!status.ok()) {
      std::fprintf(stderr, "belief_serve: %s\n", status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "belief_serve: listening on %s\n",
                 socket_path.c_str());
  }

  if (use_stdio) {
    // stdout is the protocol channel; all human chatter goes to stderr.
    if (isatty(STDIN_FILENO)) {
      std::fprintf(stderr,
                   "belief_serve: frames on stdin (BATCH/PING/SHUTDOWN); "
                   "see docs/SERVER.md\n");
    }
    arbiter::server::ServeStream(std::cin, std::cout, &server);
  } else {
    while (g_signal == 0 && !socket_server.shutdown_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  if (!socket_path.empty()) socket_server.Stop();
  std::fprintf(stderr, "belief_serve: bye\n");
  return 0;
}
