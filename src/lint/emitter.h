#ifndef ARBITER_LINT_EMITTER_H_
#define ARBITER_LINT_EMITTER_H_

#include <string>
#include <utility>
#include <vector>

#include "lint/diagnostic.h"
#include "lint/lint.h"
#include "util/logging.h"

/// \file emitter.h
/// Shared emission plumbing for the single-statement linter (lint.cc)
/// and the dataflow pass (flow_checks.cc): registry lookup, per-check
/// suppression, location fill-in, fix-it attachment.  Internal to
/// src/lint; not part of the public lint API.

namespace arbiter::lint {

class Emitter {
 public:
  Emitter(std::string file, const LintOptions& options,
          std::vector<Diagnostic>* out)
      : file_(std::move(file)), options_(options), out_(out) {}

  /// `certified` is the proof-certification status of the SAT verdict
  /// behind the finding (Diagnostic::certified): pass 1/0 under
  /// --certify, leave -1 otherwise.  An uncertified finding (0) is
  /// emitted one severity notch lower — its verdict rests on a solver
  /// answer the independent checker could not reproduce.
  void Emit(const std::string& check_id, int line, int col,
            std::string message, std::string note = "",
            std::vector<FixIt> fixits = {}, int certified = -1) {
    const CheckInfo* info = FindCheck(check_id);
    ARBITER_CHECK_MSG(info != nullptr, check_id.c_str());
    for (const std::string& disabled : options_.disabled_checks) {
      if (disabled == check_id) return;
    }
    Diagnostic d;
    d.file = file_;
    d.line = line;
    d.col = col < 1 ? 1 : col;
    d.severity = info->severity;
    d.check_id = check_id;
    d.message = std::move(message);
    d.note = std::move(note);
    d.fixits = std::move(fixits);
    d.certified = certified;
    if (certified == 0) Downgrade(&d);
    out_->push_back(std::move(d));
  }

  /// One-notch severity downgrade for a finding whose SAT verdict
  /// failed proof certification.
  static void Downgrade(Diagnostic* d) {
    if (d->severity == Severity::kError) {
      d->severity = Severity::kWarning;
    } else if (d->severity == Severity::kWarning) {
      d->severity = Severity::kNote;
    }
    if (!d->note.empty()) d->note += "; ";
    d->note += "verdict could not be certified by the proof checker";
  }

  const LintOptions& options() const { return options_; }
  const std::string& file() const { return file_; }

 private:
  std::string file_;
  const LintOptions& options_;
  std::vector<Diagnostic>* out_;
};

}  // namespace arbiter::lint

#endif  // ARBITER_LINT_EMITTER_H_
