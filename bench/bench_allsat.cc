// Model-enumeration throughput: AllSAT with blocking clauses vs
// brute-force truth-table enumeration.

#include <benchmark/benchmark.h>

#include "enc/tseitin.h"
#include "logic/generator.h"
#include "logic/semantics.h"
#include "sat/all_sat.h"
#include "sat/solver.h"

namespace {

using namespace arbiter;

void BM_AllSatEnumeration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n);
  Formula f = RandomKCnf(&rng, n, 2 * n, 3);  // many models
  int64_t models = 0;
  for (auto _ : state) {
    state.PauseTiming();
    sat::Solver solver;
    enc::TseitinEncoder encoder(&solver);
    encoder.ReserveInputVars(n);
    encoder.Assert(f);
    state.ResumeTiming();
    sat::AllSatOptions options;
    options.num_project = n;
    options.max_models = 2000;
    models += sat::EnumerateAllSat(&solver, options,
                                   [](uint64_t) { return true; });
  }
  state.counters["models/iter"] = benchmark::Counter(
      static_cast<double>(models), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_AllSatEnumeration)->Arg(10)->Arg(14)->Arg(18)->Arg(24);

void BM_BruteForceEnumeration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n);
  Formula f = RandomKCnf(&rng, n, 2 * n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EnumerateModels(f, n));
  }
}
BENCHMARK(BM_BruteForceEnumeration)->Arg(10)->Arg(14)->Arg(18);

void BM_AllSatProjection(benchmark::State& state) {
  // Enumerate over a small projection of a larger formula: the
  // blocking clauses keep the count tiny even though the full model
  // space is huge.
  const int n = 20;
  const int project = static_cast<int>(state.range(0));
  Rng rng(99);
  Formula f = RandomKCnf(&rng, n, n, 3);
  for (auto _ : state) {
    state.PauseTiming();
    sat::Solver solver;
    enc::TseitinEncoder encoder(&solver);
    encoder.ReserveInputVars(n);
    encoder.Assert(f);
    state.ResumeTiming();
    sat::AllSatOptions options;
    options.num_project = project;
    benchmark::DoNotOptimize(sat::CollectAllSat(&solver, options));
  }
}
BENCHMARK(BM_AllSatProjection)->Arg(4)->Arg(8)->Arg(12);

}  // namespace
