// Heterogeneous database merging — the application the paper's
// introduction calls "especially promising" for arbitration: several
// equally important databases must be combined to answer queries, and
// none of them outranks the others.
//
// Three hospital shards record facts about one patient; an integrity
// constraint rules out impossible combinations.  We merge with three
// aggregation policies and show how the verdicts differ:
//
//   sum  — majority-leaning (total disagreement minimized),
//   gmax — egalitarian (the worst-treated source is best served),
//   max  — the paper's odist generalized to k sources.
//
// Build & run:  ./build/examples/database_merge

#include <cstdio>
#include <vector>

#include "change/merge.h"
#include "core/arbiter.h"

int main() {
  using namespace arbiter;

  // d: patient is diabetic, i: on insulin, s: scheduled for surgery,
  // f: fasting.
  Arbiter arb({"d", "i", "s", "f"});
  const Vocabulary& vocab = arb.vocabulary();

  // Shard A (endocrinology): diabetic and on insulin.
  KnowledgeBase shard_a = *arb.ParseKb("d & i");
  // Shard B (surgery): scheduled for surgery, so fasting.
  KnowledgeBase shard_b = *arb.ParseKb("s & f");
  // Shard C (an outdated export): not diabetic, not on insulin.
  KnowledgeBase shard_c = *arb.ParseKb("!d & !i");

  // Integrity constraint: insulin requires diabetes, and a fasting
  // diabetic must not be on insulin unsupervised -> no insulin while
  // fasting.
  KnowledgeBase constraint = *arb.ParseKb("(i -> d) & !(i & f)");

  std::vector<ModelSet> sources = {shard_a.models(), shard_b.models(),
                                   shard_c.models()};
  std::printf("shard A: %s\n", shard_a.ToString(vocab).c_str());
  std::printf("shard B: %s\n", shard_b.ToString(vocab).c_str());
  std::printf("shard C: %s\n", shard_c.ToString(vocab).c_str());
  std::printf("constraint: %s\n\n", constraint.ToString(vocab).c_str());

  for (MergeAggregate agg : {MergeAggregate::kSum, MergeAggregate::kGMax,
                             MergeAggregate::kMax}) {
    ModelSet merged = Merge(sources, constraint.models(), agg);
    std::printf("%-4s merge -> %s\n", MergeAggregateName(agg),
                merged.ToString(vocab).c_str());
  }

  // The paper's binary arbitration is the k=2 case: merge shards A and
  // C (which flatly contradict each other) with no constraint.
  std::printf("\npairwise arbitration of A and C (contradictory):\n");
  ModelSet pairwise =
      Merge({shard_a.models(), shard_c.models()}, MergeAggregate::kMax);
  std::printf("  compromise worlds: %s\n",
              pairwise.ToString(vocab).c_str());
  return 0;
}
