// Experiment E4/E5/E6/E7 (DESIGN.md): the operator × postulate
// compliance matrix, checked exhaustively over every pair/triple of
// knowledge bases on a small vocabulary, plus the weighted (F1)-(F8)
// compliance of the Section 4 operator.
//
// This is the reproduction's central table.  The paper claims (Section
// 3) that the odist-based operator is a model-fitting operator because
// its assignment is "clearly" loyal; the exhaustive check decides that
// claim mechanically.

#include <cstdio>
#include <string>

#include "change/registry.h"
#include "change/weighted.h"
#include "postulates/checker.h"
#include "postulates/weighted_checker.h"

namespace {

using arbiter::AllPostulates;
using arbiter::ComplianceEntry;
using arbiter::Postulate;
using arbiter::PostulateChecker;
using arbiter::PostulateName;

void PrintMatrix(int num_terms) {
  std::printf("\n== Operator x postulate compliance (exhaustive, n=%d) ==\n",
              num_terms);
  std::printf("%-18s", "operator");
  for (Postulate p : AllPostulates()) {
    std::printf("%4s", PostulateName(p).c_str());
  }
  std::printf("\n");
  for (const auto& op : arbiter::AllOperators()) {
    PostulateChecker checker(op, num_terms);
    std::printf("%-18s", op->name().c_str());
    std::vector<std::string> failures;
    for (Postulate p : AllPostulates()) {
      auto cex = checker.CheckExhaustive(p);
      std::printf("%4s", cex.has_value() ? "." : "Y");
      if (cex.has_value() &&
          (p == Postulate::kA7 || p == Postulate::kA8)) {
        failures.push_back(cex->Describe());
      }
    }
    std::printf("\n");
    for (const std::string& f : failures) {
      std::printf("    %s\n", f.c_str());
    }
  }
}

void PrintWeighted(int num_terms, int samples) {
  std::printf(
      "\n== Weighted model-fitting (wdist) vs (F1)-(F8), n=%d, %d random "
      "samples ==\n",
      num_terms, samples);
  arbiter::WdistFitting op;
  arbiter::WeightedPostulateChecker checker(&op, num_terms);
  for (int i = 0; i < 8; ++i) {
    auto p = static_cast<arbiter::WeightedPostulate>(i);
    auto cex = checker.CheckSampled(p, samples, /*seed=*/1234 + i);
    std::printf("  %s: %s\n", arbiter::WeightedPostulateName(p).c_str(),
                cex.has_value() ? cex->description.c_str() : "holds");
  }
  if (num_terms <= 2) {
    std::printf("  (0/1-exhaustive:");
    for (int i = 0; i < 8; ++i) {
      auto p = static_cast<arbiter::WeightedPostulate>(i);
      auto cex = checker.CheckExhaustiveBinary(p);
      std::printf(" %s=%s", arbiter::WeightedPostulateName(p).c_str(),
                  cex.has_value() ? "FAIL" : "ok");
    }
    std::printf(")\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  int max_terms = argc > 1 ? std::atoi(argv[1]) : 3;
  for (int n = 2; n <= max_terms && n <= 3; ++n) PrintMatrix(n);
  PrintWeighted(2, 2000);
  PrintWeighted(3, 1000);
  return 0;
}
