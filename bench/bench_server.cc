// Throughput/latency benchmark for the belief server (ISSUE:
// arbitration-as-a-service).  Emits machine-readable JSON to
// BENCH_server.json (or --out).
//
// Workload: a fixed pool of 6 request variants — 8 `.belief`
// statements each (define / change / assert / undo), cycling over 8
// named stores.  The variants repeat, so after warmup every `change`
// is answered by the shared canonical-form operator-result cache; this
// is the high-cache-hit batch regime the server is built for.
//
// Arms:
//   * server_T            — one in-process BeliefServer, T worker
//                           threads pulling requests from a shared
//                           queue and executing them as batches
//                           (T = 1, 2, 7).  Reports sustained req/s,
//                           p50/p99 batch latency, and cache counters.
//   * belief_check_sub    — the pre-server deployment model: the SAME
//                           statements, one belief_check process per
//                           request (--belief-check <path>; skipped
//                           when absent).
//
// Every server arm's rendered responses are compared bit for bit
// against the single-thread arm before timing is reported; a mismatch
// aborts the run.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "server/server.h"
#include "util/string_util.h"
#include "util/sync.h"

namespace {

using namespace arbiter;
using server::BatchResult;
using server::BeliefServer;
using server::RenderOutcome;
using Clock = std::chrono::steady_clock;

struct Request {
  std::string store;
  std::vector<std::string> lines;
};

// Six variants over a shared 3-atom vocabulary.  Each is self-contained
// (starts by redefining its base), every assertion holds for every
// operator pair below (all return a nonempty subset of the minimal-
// distance models), and the statement language is exactly what
// belief_check runs — the baseline arm feeds the identical text.
std::vector<std::vector<std::string>> RequestVariants() {
  const std::pair<const char*, const char*> ops[] = {
      {"dalal", "satoh"},      {"winslett", "forbus"},
      {"borgida", "dalal"},    {"revesz-max", "satoh"},
      {"satoh", "winslett"},   {"dalal", "borgida"},
  };
  std::vector<std::vector<std::string>> variants;
  for (const auto& [op1, op2] : ops) {
    variants.push_back({
        "define kb := g & a & p",
        "assert kb entails g",
        std::string("change kb by ") + op1 + " with !a",
        "assert kb consistent-with g",
        std::string("change kb by ") + op2 + " with a | !p",
        "assert kb entails g",
        "undo kb",
        "assert kb consistent-with !a",
    });
  }
  return variants;
}

std::vector<Request> MakeRequests(int count, int num_stores) {
  const std::vector<std::vector<std::string>> variants = RequestVariants();
  std::vector<Request> requests;
  requests.reserve(count);
  for (int i = 0; i < count; ++i) {
    requests.push_back({"s" + std::to_string(i % num_stores),
                        variants[i % variants.size()]});
  }
  return requests;
}

struct ServerArm {
  std::string arm;
  int threads = 1;
  double wall_s = 0;
  double requests_per_s = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  OperatorResultCache::Stats cache;
  std::vector<std::string> responses;  // one flattened response per request
};

void Fail(const std::string& msg) {
  std::fprintf(stderr, "bench_server: %s\n", msg.c_str());
  std::exit(1);
}

// Runs all requests through one fresh BeliefServer with `threads`
// workers pulling from a shared index.
ServerArm RunServerArm(const std::vector<Request>& requests, int threads) {
  ServerArm result;
  result.arm = "server_" + std::to_string(threads);
  result.threads = threads;
  result.responses.resize(requests.size());
  std::vector<double> latencies(requests.size(), 0.0);

  BeliefServer server;
  std::atomic<size_t> next{0};
  auto worker = [&] {
    while (true) {
      const size_t i = next.fetch_add(1);
      if (i >= requests.size()) return;
      const auto t0 = Clock::now();
      BatchResult batch = server.ExecuteBatch(requests[i].store,
                                              requests[i].lines);
      latencies[i] = std::chrono::duration<double>(Clock::now() - t0).count();
      std::string flat;
      for (const server::StatementOutcome& o : batch.outcomes) {
        flat += RenderOutcome(o);
        flat += '\n';
      }
      result.responses[i] = std::move(flat);
    }
  };

  const auto start = Clock::now();
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  result.wall_s = std::chrono::duration<double>(Clock::now() - start).count();

  result.requests_per_s = requests.size() / result.wall_s;
  std::sort(latencies.begin(), latencies.end());
  result.p50_ms = latencies[latencies.size() / 2] * 1e3;
  result.p99_ms =
      latencies[std::min(latencies.size() - 1, latencies.size() * 99 / 100)] *
      1e3;
  result.cache = server.CacheStats();
  return result;
}

// The pre-server model: one belief_check process per request, script on
// stdin, output discarded.  Spawn + full solve each time, no cache.
double RunSubprocessArm(const std::string& belief_check,
                        const std::vector<Request>& requests, int count) {
  const std::string command = "'" + belief_check + "' >/dev/null 2>&1";
  const auto start = Clock::now();
  for (int i = 0; i < count; ++i) {
    FILE* pipe = popen(command.c_str(), "w");
    if (pipe == nullptr) Fail("popen(" + belief_check + ") failed");
    for (const std::string& line : requests[i].lines) {
      std::fputs(line.c_str(), pipe);
      std::fputc('\n', pipe);
    }
    const int status = pclose(pipe);
    if (status != 0) {
      Fail("belief_check exited with status " + std::to_string(status) +
           " on request " + std::to_string(i) +
           " — workload and baseline disagree");
    }
  }
  return std::chrono::duration<double>(Clock::now() - start).count();
}

double HitRate(const OperatorResultCache::Stats& s) {
  const uint64_t total = s.hits + s.misses;
  return total == 0 ? 0.0 : static_cast<double>(s.hits) / total;
}

int Usage(std::FILE* out, int code) {
  std::fprintf(out,
               "usage: bench_server [--requests <n>] [--baseline-requests "
               "<n>]\n                    [--belief-check <path>] [--out "
               "<path>] [--quick]\n");
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  int num_requests = 600;
  int baseline_requests = 40;
  std::string belief_check;
  std::string out_path = "BENCH_server.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    int64_t value = 0;
    if (arg == "--requests" && i + 1 < argc &&
        ParseInt64(argv[i + 1], &value) && value > 0) {
      num_requests = static_cast<int>(value);
      ++i;
    } else if (arg == "--baseline-requests" && i + 1 < argc &&
               ParseInt64(argv[i + 1], &value) && value >= 0) {
      baseline_requests = static_cast<int>(value);
      ++i;
    } else if (arg == "--belief-check" && i + 1 < argc) {
      belief_check = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--quick") {
      num_requests = 64;
      baseline_requests = 4;
    } else if (arg == "--help" || arg == "-h") {
      return Usage(stdout, 0);
    } else {
      std::fprintf(stderr, "bench_server: bad argument '%s'\n", arg.c_str());
      return Usage(stderr, 2);
    }
  }

  const int kStores = 8;
  const std::vector<Request> requests = MakeRequests(num_requests, kStores);
  const int thread_arms[] = {1, 2, 7};

  std::vector<ServerArm> arms;
  for (int threads : thread_arms) {
    arms.push_back(RunServerArm(requests, threads));
    const ServerArm& a = arms.back();
    if (a.responses != arms.front().responses) {
      Fail(a.arm + ": responses differ from server_1 — snapshot isolation "
           "is broken");
    }
    std::printf(
        "%-10s %8.0f req/s  p50 %6.3f ms  p99 %6.3f ms  "
        "cache %.0f%% hit (%llu/%llu)\n",
        a.arm.c_str(), a.requests_per_s, a.p50_ms, a.p99_ms,
        HitRate(a.cache) * 100,
        static_cast<unsigned long long>(a.cache.hits),
        static_cast<unsigned long long>(a.cache.hits + a.cache.misses));
  }

  double baseline_wall_s = 0;
  double baseline_req_s = 0;
  double speedup = 0;
  if (!belief_check.empty() && baseline_requests > 0) {
    baseline_wall_s =
        RunSubprocessArm(belief_check, requests, baseline_requests);
    baseline_req_s = baseline_requests / baseline_wall_s;
    speedup = arms.front().requests_per_s / baseline_req_s;
    std::printf(
        "%-10s %8.0f req/s  (%d requests, one process each)\n"
        "speedup: server_1 is %.1fx the subprocess baseline\n",
        "subprocess", baseline_req_s, baseline_requests, speedup);
  } else {
    std::printf("subprocess baseline skipped (pass --belief-check <path>)\n");
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) Fail("cannot open " + out_path);
  std::fprintf(f, "{\n  \"benchmark\": \"bench_server\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %d,\n",
               static_cast<int>(std::thread::hardware_concurrency()));
  // Whether the LockRank lock-order registry was compiled into this
  // binary (debug builds / -DARBITER_LOCK_RANK=ON).  Release numbers
  // must say false — the registry adds a rank check per acquisition.
  std::fprintf(f, "  \"lock_rank_enabled\": %s,\n",
               arbiter::kLockRankEnabled ? "true" : "false");
  std::fprintf(f,
               "  \"requests\": %d,\n  \"statements_per_request\": 8,\n"
               "  \"stores\": %d,\n  \"responses_identical\": true,\n",
               num_requests, kStores);
  std::fprintf(f, "  \"arms\": [\n");
  for (size_t i = 0; i < arms.size(); ++i) {
    const ServerArm& a = arms[i];
    std::fprintf(f,
                 "    {\"arm\": \"%s\", \"threads\": %d, \"wall_s\": %.4f, "
                 "\"requests_per_s\": %.1f, \"p50_ms\": %.4f, "
                 "\"p99_ms\": %.4f, \"cache_hits\": %llu, "
                 "\"cache_misses\": %llu, \"cache_evictions\": %llu, "
                 "\"cache_hit_rate\": %.4f},\n",
                 a.arm.c_str(), a.threads, a.wall_s, a.requests_per_s,
                 a.p50_ms, a.p99_ms,
                 static_cast<unsigned long long>(a.cache.hits),
                 static_cast<unsigned long long>(a.cache.misses),
                 static_cast<unsigned long long>(a.cache.evictions),
                 HitRate(a.cache));
  }
  if (!belief_check.empty() && baseline_requests > 0) {
    std::fprintf(f,
                 "    {\"arm\": \"belief_check_subprocess\", \"threads\": 1, "
                 "\"requests\": %d, \"wall_s\": %.4f, "
                 "\"requests_per_s\": %.1f}\n  ],\n"
                 "  \"speedup_server1_vs_subprocess\": %.2f\n}\n",
                 baseline_requests, baseline_wall_s, baseline_req_s, speedup);
  } else {
    std::fprintf(f,
                 "    {\"arm\": \"belief_check_subprocess\", "
                 "\"skipped\": true}\n  ]\n}\n");
  }
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
