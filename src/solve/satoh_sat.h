#ifndef ARBITER_SOLVE_SATOH_SAT_H_
#define ARBITER_SOLVE_SATOH_SAT_H_

#include <cstdint>
#include <vector>

#include "logic/formula.h"

/// \file satoh_sat.h
/// SAT-based Satoh revision.  Satoh's operator keeps the models of μ
/// whose symmetric difference with some model of ψ is set-inclusion
/// minimal among all such differences.  Where Dalal needs one
/// cardinality minimization, Satoh needs the *antichain* of minimal
/// difference sets; we compute it by iterated SAT:
///
///   1. find any (x ⊨ μ, y ⊨ ψ) pair and greedily shrink its
///      difference set until ⊆-minimal (each shrink test is one SAT
///      call restricting the difference bits);
///   2. block all supersets of the found minimal difference and
///      repeat until UNSAT — this enumerates exactly the minimal
///      difference antichain;
///   3. enumerate the x ⊨ μ realizing each minimal difference.
///
/// The number of minimal differences can be exponential in the worst
/// case (it is for enumeration too); `max_diffs` caps it.

namespace arbiter::solve {

struct SatSatohResult {
  bool psi_unsat = false;
  /// The ⊆-minimal difference sets (as bitmasks), sorted.
  std::vector<uint64_t> minimal_diffs;
  /// Models of ψ ∘_satoh μ, sorted, capped at max_models.
  std::vector<uint64_t> models;
  bool truncated = false;
  int num_sat_calls = 0;
};

/// Computes Satoh's revision of ψ by μ over n terms (n <= 31) without
/// enumerating 2^n interpretations.
SatSatohResult SatSatohRevise(const Formula& psi, const Formula& mu,
                              int num_terms, int64_t max_diffs = 256,
                              int64_t max_models = 1024);

}  // namespace arbiter::solve

#endif  // ARBITER_SOLVE_SATOH_SAT_H_
