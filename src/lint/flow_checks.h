#ifndef ARBITER_LINT_FLOW_CHECKS_H_
#define ARBITER_LINT_FLOW_CHECKS_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/diagnostic.h"
#include "lint/lint.h"

/// \file flow_checks.h
/// The flow/* check family: verdicts read off the dataflow fixpoint
/// (dataflow.h) over the script CFG (cfg.h).
///
///   flow/unreachable      statement provably never executes
///   flow/redundant-change path-sensitive (R2)/(U2) no-op
///   flow/dead-define      defined value never read before redefine/end
///   flow/undo-empty       history provably empty on every path
///   flow/assert-passes    assertion provably holds on every path
///   flow/assert-fails     assertion provably fails whenever it runs
///
/// Every verdict is execution-conditional: it claims something about
/// runs that *reach* the statement, so it stays true when an earlier
/// hard error stops the script.  The differential fuzz harness holds
/// these verdicts against concrete RunScript reports.

namespace arbiter::lint {

/// One dataflow verdict, in runtime-comparable form: `statement` is
/// RenderStatement(stmt), exactly the text RunScript records, so
/// harnesses can match verdicts to report steps by (line, text).
struct FlowVerdict {
  enum class Kind {
    kUnreachable,
    kRedundantChange,
    kDeadDefine,
    kUndoEmpty,
    kAssertPasses,
    kAssertFails,
  };
  Kind kind;
  int line = 0;
  std::string base;
  std::string statement;
};

/// Result of the dataflow pass.
struct FlowAnalysis {
  /// flow/* diagnostics, after per-line duplicate suppression against
  /// the single-statement pass but before global normalization.
  std::vector<Diagnostic> diagnostics;
  /// All verdicts the analysis proved, independent of diagnostic
  /// suppression — the ground truth the fuzz harness checks.
  std::vector<FlowVerdict> verdicts;
  /// Guard-unwrap fix-its for provably tautological top-level guards,
  /// keyed by line; LintScriptText attaches them to the
  /// script/guard-tautology diagnostics of the single-statement pass.
  std::map<int, FixIt> guard_unwraps;
  /// False when the pass was skipped (disabled, statement syntax
  /// errors, or vocabulary over the enumeration capacity).
  bool ran = false;
};

/// Runs CFG construction, the abstract-interpretation fixpoint, and
/// the verdict passes over `text`.  `already_emitted` holds the
/// (line, check id) pairs of the single-statement pass so flow
/// diagnostics restating the same finding on the same line are
/// dropped (the verdict is still recorded).
FlowAnalysis AnalyzeScriptFlow(
    const std::string& file, const std::string& text,
    const LintOptions& options,
    const std::set<std::pair<int, std::string>>& already_emitted);

}  // namespace arbiter::lint

#endif  // ARBITER_LINT_FLOW_CHECKS_H_
