#ifndef ARBITER_POSTULATES_REPRESENTATION_H_
#define ARBITER_POSTULATES_REPRESENTATION_H_

#include <memory>
#include <optional>
#include <string>

#include "change/operator.h"
#include "model/loyal.h"
#include "model/preorder.h"

/// \file representation.h
/// Executable Theorem 3.1.
///
/// The only-if direction of the paper's proof *constructs* the
/// pre-order from the operator:
///
///     I ≤ψ J   iff   I ∈ Mod(ψ ▷ form(I, J))
///
/// This module runs that construction on any operator and checks each
/// step of the proof mechanically:
///
///   (1) ≤ψ is a total pre-order (total, reflexive, transitive);
///   (2) the assignment ψ ↦ ≤ψ satisfies loyalty conditions (1)–(3);
///   (3) Mod(ψ ▷ μ) = Min(Mod(μ), ≤ψ) for every μ.
///
/// For an operator satisfying (A1)–(A8) all three hold (Theorem 3.1);
/// for the paper's concrete operators the check pinpoints exactly
/// which step breaks, turning the E4 finding into a proof trace.

namespace arbiter {

/// Outcome of running the representation construction.
struct RepresentationReport {
  /// Step (1): derived relations are total pre-orders for every
  /// satisfiable ψ.
  bool preorders_total = false;
  bool preorders_transitive = false;
  /// Step (2): the derived assignment is loyal.
  bool assignment_loyal = false;
  std::optional<LoyaltyViolation> loyalty_violation;
  /// Step (3): Min(Mod(μ), ≤ψ) reproduces the operator everywhere.
  bool representation_exact = false;
  /// Human-readable summary of the first failure, if any.
  std::string detail;

  /// True iff every step succeeded — i.e. the operator is a
  /// model-fitting operator in the sense of Theorem 3.1.
  bool IsModelFitting() const {
    return preorders_total && preorders_transitive && assignment_loyal &&
           representation_exact;
  }
};

/// The proof's derived relation for one knowledge base:
/// rank-based iff the derived relation is a total pre-order; the
/// returned matrix holds leq[i][j] = (I_i ≤ψ I_j) verbatim.
struct DerivedRelation {
  int num_terms;
  std::vector<std::vector<bool>> leq;  // [2^n][2^n]

  bool Total() const;
  bool Reflexive() const;
  bool Transitive() const;

  /// Min(S, ≤) under the raw relation (no rank assumption).
  ModelSet MinOf(const ModelSet& s) const;
};

/// Derives ≤ψ from the operator via the proof's construction.
/// Requires psi nonempty and num_terms <= kMaxEnumTerms (practically
/// <= 4: the construction calls the operator O(4^n) times).
DerivedRelation DeriveRelation(const TheoryChangeOperator& op,
                               const ModelSet& psi);

/// Runs the full Theorem 3.1 check on an operator, exhaustively over
/// an n-term vocabulary (n <= 3).
RepresentationReport CheckRepresentation(
    std::shared_ptr<const TheoryChangeOperator> op, int num_terms);

}  // namespace arbiter

#endif  // ARBITER_POSTULATES_REPRESENTATION_H_
