// Companion table to experiment E6: structural properties of every
// operator, exhaustively over 2 terms.  This is the paper's Section 3
// separation argument as a table — updates are monotone, revisions are
// not (Gärdenfors), and commutativity is what arbitration adds.

#include <cstdio>

#include "change/properties.h"
#include "change/registry.h"
#include "postulates/commutative_checker.h"
#include "postulates/iterated_checker.h"

int main() {
  using namespace arbiter;
  std::printf("operator properties (exhaustive, n=2; Y = holds)\n\n");
  std::printf("%-18s %-9s %-11s %-12s %-12s %-8s %-8s\n", "operator",
              "monotone", "idempotent", "commutative", "associative",
              "success", "vacuity");
  for (const std::string& name : RegisteredOperatorNames()) {
    auto op = MakeOperator(name).ValueOrDie();
    auto yn = [](const std::optional<PropertyCounterexample>& c) {
      return c.has_value() ? "." : "Y";
    };
    std::printf("%-18s %-9s %-11s %-12s %-12s %-8s %-8s\n", name.c_str(),
                yn(CheckMonotone(*op, 2)), yn(CheckIdempotent(*op, 2)),
                yn(CheckCommutative(*op, 2)),
                yn(CheckAssociative(*op, 2)), yn(CheckSuccess(*op, 2)),
                yn(CheckVacuity(*op, 2)));
  }
  std::printf(
      "\ncommutative-arbitration postulates (C1)-(C8), exhaustive n=2:\n");
  std::printf("%-18s", "operator");
  for (CommutativePostulate p : AllCommutativePostulates()) {
    std::printf("%4s", CommutativePostulateName(p).c_str());
  }
  std::printf("\n");
  for (const std::string& name : RegisteredOperatorNames()) {
    CommutativeChecker checker(MakeOperator(name).ValueOrDie(), 2);
    std::printf("%-18s", name.c_str());
    for (CommutativePostulate p : AllCommutativePostulates()) {
      std::printf("%4s", checker.CheckExhaustive(p).has_value() ? "." : "Y");
    }
    std::printf("\n");
  }

  std::printf(
      "\niterated-revision postulates (DP, KB-level reading), "
      "exhaustive n=2:\n");
  std::printf("%-18s", "operator");
  for (IteratedPostulate p : AllIteratedPostulates()) {
    std::printf("%4s", IteratedPostulateName(p).c_str());
  }
  std::printf("\n");
  for (const std::string& name : RegisteredOperatorNames()) {
    IteratedChecker checker(MakeOperator(name).ValueOrDie(), 2);
    std::printf("%-18s", name.c_str());
    for (IteratedPostulate p : AllIteratedPostulates()) {
      std::printf("%4s",
                  checker.CheckExhaustive(p).has_value() ? "." : "Y");
    }
    std::printf("\n");
  }
  std::printf(
      "(no KB-level operator satisfies all four: iteration needs "
      "epistemic states)\n");

  std::printf(
      "\nreading (paper, Section 3):\n"
      " * updates (winslett, forbus) are monotone; no revision is —\n"
      "   Gaerdenfors' impossibility theorem, so the classes are "
      "disjoint;\n"
      " * commutativity singles out the arbitration operators;\n"
      " * arbitration gives up success (both voices are negotiable) "
      "and\n   associativity (merge order matters -> k-ary merging "
      "exists).\n");
  return 0;
}
