// Tests for the formula AST: factories, smart constructors, structural
// equality and hashing.

#include "logic/formula.h"

#include <gtest/gtest.h>

namespace arbiter {
namespace {

TEST(FormulaTest, Constants) {
  EXPECT_TRUE(Formula::True().is_true());
  EXPECT_TRUE(Formula::False().is_false());
  EXPECT_TRUE(Formula().is_false()) << "default formula is bottom";
}

TEST(FormulaTest, Var) {
  Formula v = Formula::Var(3);
  ASSERT_TRUE(v.is_var());
  EXPECT_EQ(v.var(), 3);
  EXPECT_EQ(v.MaxVar(), 3);
}

TEST(FormulaTest, NotFoldsConstants) {
  EXPECT_TRUE(Not(Formula::True()).is_false());
  EXPECT_TRUE(Not(Formula::False()).is_true());
}

TEST(FormulaTest, DoubleNegationCollapses) {
  Formula v = Formula::Var(0);
  EXPECT_TRUE(Not(Not(v)).Equals(v));
}

TEST(FormulaTest, LiteralPredicate) {
  Formula v = Formula::Var(0);
  EXPECT_TRUE(v.is_literal());
  EXPECT_TRUE(Not(v).is_literal());
  EXPECT_FALSE(And(v, Formula::Var(1)).is_literal());
}

TEST(FormulaTest, AndSimplifications) {
  Formula a = Formula::Var(0), b = Formula::Var(1);
  EXPECT_TRUE(And(std::vector<Formula>{}).is_true());
  EXPECT_TRUE(And(a, Formula::False()).is_false());
  EXPECT_TRUE(And(a, Formula::True()).Equals(a));
  EXPECT_EQ(And(a, b).num_children(), 2);
  EXPECT_EQ(And(a, b, a).num_children(), 3);
}

TEST(FormulaTest, OrSimplifications) {
  Formula a = Formula::Var(0), b = Formula::Var(1);
  EXPECT_TRUE(Or(std::vector<Formula>{}).is_false());
  EXPECT_TRUE(Or(a, Formula::True()).is_true());
  EXPECT_TRUE(Or(a, Formula::False()).Equals(a));
  EXPECT_EQ(Or(a, b).num_children(), 2);
}

TEST(FormulaTest, ImpliesSimplifications) {
  Formula a = Formula::Var(0), b = Formula::Var(1);
  EXPECT_TRUE(Implies(Formula::False(), a).is_true());
  EXPECT_TRUE(Implies(a, Formula::True()).is_true());
  EXPECT_TRUE(Implies(Formula::True(), b).Equals(b));
  EXPECT_TRUE(Implies(a, Formula::False()).Equals(Not(a)));
  EXPECT_EQ(Implies(a, b).kind(), FormulaKind::kImplies);
}

TEST(FormulaTest, IffXorSimplifications) {
  Formula a = Formula::Var(0), b = Formula::Var(1);
  EXPECT_TRUE(Iff(Formula::True(), b).Equals(b));
  EXPECT_TRUE(Iff(a, Formula::False()).Equals(Not(a)));
  EXPECT_TRUE(Xor(Formula::False(), b).Equals(b));
  EXPECT_TRUE(Xor(a, Formula::True()).Equals(Not(a)));
  EXPECT_EQ(Iff(a, b).kind(), FormulaKind::kIff);
  EXPECT_EQ(Xor(a, b).kind(), FormulaKind::kXor);
}

TEST(FormulaTest, SizeAndDepth) {
  Formula a = Formula::Var(0), b = Formula::Var(1);
  Formula f = And(Or(a, b), Not(a));
  EXPECT_EQ(f.Size(), 6);  // And, Or, a, b, Not, a
  EXPECT_EQ(f.Depth(), 3);
  EXPECT_EQ(a.Depth(), 1);
}

TEST(FormulaTest, MaxVar) {
  EXPECT_EQ(Formula::True().MaxVar(), -1);
  EXPECT_EQ(And(Formula::Var(2), Formula::Var(7)).MaxVar(), 7);
}

TEST(FormulaTest, StructuralEquality) {
  Formula a = Formula::Var(0), b = Formula::Var(1);
  EXPECT_TRUE(And(a, b).Equals(And(a, b)));
  EXPECT_FALSE(And(a, b).Equals(And(b, a))) << "order matters structurally";
  EXPECT_FALSE(And(a, b).Equals(Or(a, b)));
}

TEST(FormulaTest, HashConsistentWithEquals) {
  Formula a = Formula::Var(0), b = Formula::Var(1);
  Formula f1 = Implies(And(a, b), Or(a, Not(b)));
  Formula f2 = Implies(And(a, b), Or(a, Not(b)));
  EXPECT_TRUE(f1.Equals(f2));
  EXPECT_EQ(f1.Hash(), f2.Hash());
  EXPECT_NE(f1.Hash(), Not(f1).Hash());
}

TEST(FormulaTest, SharingIsObservable) {
  Formula a = Formula::Var(0);
  Formula f = And(a, Formula::Var(1));
  EXPECT_TRUE(f.child(0).SameNode(a));
  EXPECT_EQ(f.child(0).NodeId(), a.NodeId());
}

TEST(FormulaTest, CheapCopies) {
  Formula f = And(Formula::Var(0), Formula::Var(1));
  Formula g = f;  // shared node
  EXPECT_TRUE(f.SameNode(g));
}

}  // namespace
}  // namespace arbiter
