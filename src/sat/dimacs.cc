#include "sat/dimacs.h"

#include <sstream>

namespace arbiter::sat {

Result<CnfInstance> ParseDimacs(const std::string& text) {
  CnfInstance out;
  std::istringstream in(text);
  std::string line;
  bool saw_header = false;
  int declared_clauses = 0;
  std::vector<Lit> current;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == 'c') continue;
    if (line[0] == 'p') {
      std::istringstream header(line);
      std::string p, cnf;
      header >> p >> cnf >> out.num_vars >> declared_clauses;
      if (cnf != "cnf" || out.num_vars < 0 || declared_clauses < 0 ||
          header.fail()) {
        return Status::InvalidArgument("malformed DIMACS header: " + line);
      }
      saw_header = true;
      continue;
    }
    if (!saw_header) {
      return Status::InvalidArgument("clause before DIMACS header");
    }
    std::istringstream body(line);
    long long x = 0;
    while (body >> x) {
      if (x == 0) {
        out.clauses.push_back(current);
        current.clear();
        continue;
      }
      long long v = x > 0 ? x : -x;
      if (v > out.num_vars) {
        return Status::InvalidArgument("literal exceeds declared variables: " +
                                       std::to_string(x));
      }
      current.push_back(Lit(static_cast<Var>(v - 1), x < 0));
    }
  }
  if (!saw_header) return Status::InvalidArgument("missing DIMACS header");
  if (!current.empty()) {
    return Status::InvalidArgument("final clause not terminated by 0");
  }
  if (out.clauses.size() != static_cast<size_t>(declared_clauses)) {
    return Status::InvalidArgument(
        "clause count mismatch: header declares " +
        std::to_string(declared_clauses) + " but body has " +
        std::to_string(out.clauses.size()));
  }
  return out;
}

std::string ToDimacs(const CnfInstance& instance) {
  std::ostringstream out;
  out << "p cnf " << instance.num_vars << " " << instance.clauses.size()
      << "\n";
  for (const std::vector<Lit>& clause : instance.clauses) {
    for (Lit l : clause) {
      out << (l.negated() ? -(l.var() + 1) : (l.var() + 1)) << " ";
    }
    out << "0\n";
  }
  return out.str();
}

}  // namespace arbiter::sat
