// Tests for the formula parser and printer, including round trips.

#include "logic/parser.h"

#include <gtest/gtest.h>

#include "logic/printer.h"
#include "logic/semantics.h"

namespace arbiter {
namespace {

Formula P(const std::string& text, Vocabulary* vocab) {
  Result<Formula> f = Parse(text, vocab);
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return *f;
}

TEST(ParserTest, Atoms) {
  Vocabulary v;
  EXPECT_TRUE(P("true", &v).is_true());
  EXPECT_TRUE(P("false", &v).is_false());
  Formula a = P("A", &v);
  ASSERT_TRUE(a.is_var());
  EXPECT_EQ(v.Name(a.var()), "A");
}

TEST(ParserTest, AutoRegistersTerms) {
  Vocabulary v;
  P("A & B | C", &v);
  EXPECT_EQ(v.size(), 3);
}

TEST(ParserTest, StrictModeRejectsUnknown) {
  Vocabulary v = Vocabulary::Synthetic(1);
  EXPECT_FALSE(Parse("p0 & mystery", &v, ParseMode::kStrict).ok());
  EXPECT_TRUE(Parse("p0", &v, ParseMode::kStrict).ok());
}

TEST(ParserTest, PrecedenceNotOverAnd) {
  Vocabulary v;
  Formula f = P("!A & B", &v);
  EXPECT_EQ(f.kind(), FormulaKind::kAnd);
  EXPECT_EQ(f.child(0).kind(), FormulaKind::kNot);
}

TEST(ParserTest, PrecedenceAndOverOr) {
  Vocabulary v;
  Formula f = P("A | B & C", &v);
  EXPECT_EQ(f.kind(), FormulaKind::kOr);
  EXPECT_EQ(f.child(1).kind(), FormulaKind::kAnd);
}

TEST(ParserTest, PrecedenceOrOverImplies) {
  Vocabulary v;
  Formula f = P("A | B -> C", &v);
  EXPECT_EQ(f.kind(), FormulaKind::kImplies);
  EXPECT_EQ(f.child(0).kind(), FormulaKind::kOr);
}

TEST(ParserTest, ImpliesRightAssociative) {
  Vocabulary v;
  Formula f = P("A -> B -> C", &v);
  EXPECT_EQ(f.kind(), FormulaKind::kImplies);
  EXPECT_EQ(f.child(1).kind(), FormulaKind::kImplies);
}

TEST(ParserTest, Parentheses) {
  Vocabulary v;
  Formula f = P("(A | B) & C", &v);
  EXPECT_EQ(f.kind(), FormulaKind::kAnd);
  EXPECT_EQ(f.child(0).kind(), FormulaKind::kOr);
}

TEST(ParserTest, AlternativeSpellings) {
  Vocabulary v1, v2;
  // and/or/not/implies/iff/xor keyword forms parse to the same models.
  Formula sym = P("!(A & B) | (C -> D) ^ (A <-> D)", &v1);
  Formula kw = P("not (A and B) or (C implies D) xor (A iff D)", &v2);
  EXPECT_TRUE(AreEquivalent(sym, kw, 4));
}

TEST(ParserTest, DoubleOperatorSpellings) {
  Vocabulary v1, v2;
  EXPECT_TRUE(AreEquivalent(P("A && B || C", &v1), P("A & B | C", &v2), 3));
}

TEST(ParserTest, NaryChainsFlatten) {
  Vocabulary v;
  Formula f = P("A & B & C & D", &v);
  EXPECT_EQ(f.kind(), FormulaKind::kAnd);
  EXPECT_EQ(f.num_children(), 4);
}

TEST(ParserTest, ErrorsAreInvalidArgument) {
  Vocabulary v;
  for (const char* bad : {"", "A &", "& A", "(A", "A)", "A ! B", "->",
                          "A <- B", "A & (B |)"}) {
    Result<Formula> r = Parse(bad, &v);
    EXPECT_FALSE(r.ok()) << "should fail: \"" << bad << "\"";
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(ParserTest, IdentifiersWithPrimesAndUnderscores) {
  Vocabulary v;
  Formula f = P("state_0' & _x", &v);
  EXPECT_EQ(v.size(), 2);
  EXPECT_TRUE(v.Contains("state_0'"));
  EXPECT_TRUE(v.Contains("_x"));
  EXPECT_EQ(f.kind(), FormulaKind::kAnd);
}

TEST(ParserTest, KeywordPrefixIdentifiers) {
  Vocabulary v;
  // "trueX" and "orchid" start with keywords but are identifiers.
  Formula f = P("trueX & orchid", &v);
  EXPECT_EQ(f.kind(), FormulaKind::kAnd);
  EXPECT_TRUE(v.Contains("trueX"));
  EXPECT_TRUE(v.Contains("orchid"));
}

TEST(PrinterTest, RoundTripPreservesSemantics) {
  const char* cases[] = {
      "A",
      "!A",
      "A & B | C",
      "A | B & C",
      "(A | B) & C",
      "A -> B -> C",
      "(A -> B) -> C",
      "A <-> B <-> C",
      "A ^ B ^ C",
      "!(A & (B | !C)) -> (A <-> C)",
      "true & A | false",
  };
  for (const char* text : cases) {
    Vocabulary v1;
    Formula original = P(text, &v1);
    std::string printed = ToString(original, v1);
    Vocabulary v2 = v1;
    Result<Formula> reparsed = Parse(printed, &v2, ParseMode::kStrict);
    ASSERT_TRUE(reparsed.ok())
        << "\"" << text << "\" printed as unparseable \"" << printed << "\"";
    EXPECT_TRUE(AreEquivalent(original, *reparsed, v1.size()))
        << text << " vs " << printed;
  }
}

TEST(PrinterTest, MinimalParentheses) {
  Vocabulary v;
  EXPECT_EQ(ToString(P("A & B | C", &v), v), "A & B | C");
  EXPECT_EQ(ToString(P("(A | B) & C", &v), v), "(A | B) & C");
  EXPECT_EQ(ToString(P("!A", &v), v), "!A");
  EXPECT_EQ(ToString(P("!(A & B)", &v), v), "!(A & B)");
}

TEST(PrinterTest, SyntheticNames) {
  Formula f = And(Formula::Var(0), Not(Formula::Var(1)));
  EXPECT_EQ(ToString(f), "p0 & !p1");
}

TEST(MustParseTest, ReturnsFormula) {
  Vocabulary v;
  EXPECT_TRUE(MustParse("A | !A", &v).kind() == FormulaKind::kOr);
}

TEST(ParserTest, DeepNestingIsAnErrorNotAStackOverflow) {
  // Each of these used to recurse once per character with no bound; a
  // hostile 100k-byte line could blow the stack.  The depth cap turns
  // all three shapes into kInvalidArgument.
  const int kDepth = 200000;
  const std::string cases[] = {
      std::string(kDepth, '(') + "A" + std::string(kDepth, ')'),
      std::string(kDepth, '!') + "A",
      [] {
        std::string imp;
        for (int i = 0; i < kDepth; ++i) imp += "A -> (";
        imp += "A" + std::string(kDepth, ')');
        return imp;
      }(),
  };
  for (const std::string& text : cases) {
    Vocabulary v;
    Result<Formula> r = Parse(text, &v);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ParserTest, NestingWithinTheCapStillParses) {
  Vocabulary v;
  const int kDepth = 900;  // under the 1000 cap
  std::string text = std::string(kDepth, '(') + "A & B" +
                     std::string(kDepth, ')');
  EXPECT_TRUE(Parse(text, &v).ok());
}

}  // namespace
}  // namespace arbiter
