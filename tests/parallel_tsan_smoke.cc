// ThreadSanitizer smoke test for the thread-pool execution layer.
//
// Built standalone (no gtest) with -fsanitize=thread directly from
// parallel.cc, so the tier-1 ctest run exercises the pool's
// synchronization under TSan even when the main build is
// uninstrumented.  Hammers the primitives that carry all the
// concurrency in the library: chunk claiming, completion signalling,
// nested submission, and shared atomic incumbents (the pattern used by
// the parallel argmin and the checker sweeps).

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "util/parallel.h"

namespace {

using arbiter::ParallelFor;
using arbiter::ParallelReduce;
using arbiter::ThreadPool;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
    std::exit(1);
  }
}

void HammerParallelFor() {
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> total{0};
    ParallelFor(0, 10000, 64, [&](uint64_t lo, uint64_t hi) {
      int64_t local = 0;
      for (uint64_t i = lo; i < hi; ++i) local += static_cast<int64_t>(i);
      total.fetch_add(local, std::memory_order_relaxed);
    });
    Check(total.load() == 9999LL * 10000 / 2, "ParallelFor sum");
  }
}

void HammerPerChunkSlots() {
  // The determinism pattern: disjoint per-chunk writes, no atomics.
  const uint64_t kSize = 8192, kGrain = 32;
  std::vector<int64_t> slots(kSize / kGrain, -1);
  for (int round = 0; round < 50; ++round) {
    ParallelFor(0, kSize, kGrain, [&](uint64_t lo, uint64_t hi) {
      slots[lo / kGrain] = static_cast<int64_t>(hi - lo);
    });
    for (int64_t s : slots) Check(s == kGrain, "chunk slot");
  }
}

void HammerSharedIncumbent() {
  // The argmin pattern: CAS-min on a shared atomic bound.
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> best{1 << 20};
    ParallelFor(0, 4096, 16, [&](uint64_t lo, uint64_t hi) {
      for (uint64_t i = lo; i < hi; ++i) {
        const int64_t r = static_cast<int64_t>((i * 2654435761u) % 7919);
        int64_t cur = best.load(std::memory_order_relaxed);
        while (r < cur && !best.compare_exchange_weak(
                              cur, r, std::memory_order_relaxed)) {
        }
      }
    });
    Check(best.load() == 0, "incumbent min");
  }
}

void HammerNested() {
  for (int round = 0; round < 20; ++round) {
    std::atomic<int64_t> total{0};
    ParallelFor(0, 16, 1, [&](uint64_t lo, uint64_t hi) {
      for (uint64_t i = lo; i < hi; ++i) {
        const int64_t inner = ParallelReduce<int64_t>(
            0, 500, 13, 0,
            [](uint64_t ilo, uint64_t ihi) {
              return static_cast<int64_t>(ihi - ilo);
            },
            [](int64_t a, int64_t b) { return a + b; });
        total.fetch_add(inner, std::memory_order_relaxed);
      }
    });
    Check(total.load() == 16 * 500, "nested reduce");
  }
}

}  // namespace

int main() {
  for (int threads : {2, 4, 8}) {
    ThreadPool::Instance().SetNumThreads(threads);
    HammerParallelFor();
    HammerPerChunkSlots();
    HammerSharedIncumbent();
    HammerNested();
  }
  ThreadPool::Instance().SetNumThreads(0);
  std::printf("parallel_tsan_smoke: OK\n");
  return 0;
}
