// Microbenchmarks for the SAT substrate: CDCL vs the DPLL baseline on
// random 3-CNF (below, at, and above the satisfiability phase
// transition) and on pigeonhole instances.

#include <benchmark/benchmark.h>

#include "logic/generator.h"
#include "sat/dpll.h"
#include "sat/solver.h"
#include "util/random.h"

namespace {

using namespace arbiter;
using sat::DpllSolver;
using sat::Lit;
using sat::Solver;

// Loads the clauses of a k-CNF formula into any solver via a callback.
template <typename AddClauseFn>
void LoadKCnf(const Formula& f, const AddClauseFn& add) {
  auto clause_lits = [](const Formula& clause) {
    std::vector<Lit> lits;
    const std::vector<Formula> singleton = {clause};
    const std::vector<Formula>& parts =
        clause.kind() == FormulaKind::kOr ? clause.children() : singleton;
    for (const Formula& lit : parts) {
      if (lit.is_var()) {
        lits.push_back(Lit::Pos(lit.var()));
      } else {
        lits.push_back(Lit::Neg(lit.child(0).var()));
      }
    }
    return lits;
  };
  if (f.kind() == FormulaKind::kAnd) {
    for (const Formula& clause : f.children()) add(clause_lits(clause));
  } else {
    add(clause_lits(f));
  }
}

void BM_CdclRandom3Cnf(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const double ratio = static_cast<double>(state.range(1)) / 10.0;
  const int clauses = static_cast<int>(n * ratio);
  Rng rng(n * 31 + clauses);
  int64_t conflicts = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Formula f = RandomKCnf(&rng, n, clauses, 3);
    Solver solver;
    for (int i = 0; i < n; ++i) solver.NewVar();
    LoadKCnf(f, [&](std::vector<Lit> lits) {
      solver.AddClause(std::move(lits));
    });
    state.ResumeTiming();
    benchmark::DoNotOptimize(solver.Solve());
    conflicts += static_cast<int64_t>(solver.stats().conflicts);
  }
  state.counters["conflicts/iter"] = benchmark::Counter(
      static_cast<double>(conflicts), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_CdclRandom3Cnf)
    ->Args({50, 30})    // under-constrained (SAT)
    ->Args({50, 43})    // phase transition
    ->Args({50, 55})    // over-constrained (UNSAT)
    ->Args({100, 43})
    ->Args({150, 43});

void BM_DpllRandom3Cnf(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int clauses = static_cast<int>(n * 4.3);
  Rng rng(n * 17);
  for (auto _ : state) {
    state.PauseTiming();
    Formula f = RandomKCnf(&rng, n, clauses, 3);
    DpllSolver solver(n);
    LoadKCnf(f, [&](std::vector<Lit> lits) {
      solver.AddClause(std::move(lits));
    });
    state.ResumeTiming();
    benchmark::DoNotOptimize(solver.Solve());
  }
}
BENCHMARK(BM_DpllRandom3Cnf)->Arg(20)->Arg(30)->Arg(40);

void AddPigeonhole(Solver* s, int holes) {
  const int pigeons = holes + 1;
  std::vector<std::vector<sat::Var>> in(pigeons,
                                        std::vector<sat::Var>(holes));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) in[p][h] = s->NewVar();
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(Lit::Pos(in[p][h]));
    s->AddClause(clause);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s->AddBinary(Lit::Neg(in[p1][h]), Lit::Neg(in[p2][h]));
      }
    }
  }
}

void BM_CdclPigeonhole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Solver solver;
    AddPigeonhole(&solver, holes);
    state.ResumeTiming();
    benchmark::DoNotOptimize(solver.Solve());
  }
}
BENCHMARK(BM_CdclPigeonhole)->Arg(5)->Arg(6)->Arg(7);

void BM_UnitPropagationThroughput(benchmark::State& state) {
  // A long implication chain: measures raw propagation speed.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Solver solver;
    std::vector<sat::Var> v;
    for (int i = 0; i < n; ++i) v.push_back(solver.NewVar());
    for (int i = 0; i + 1 < n; ++i) {
      solver.AddBinary(Lit::Neg(v[i]), Lit::Pos(v[i + 1]));
    }
    solver.AddUnit(Lit::Pos(v[0]));
    state.ResumeTiming();
    benchmark::DoNotOptimize(solver.Solve());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UnitPropagationThroughput)->Arg(1000)->Arg(10000);

}  // namespace
