#include "logic/parser.h"

#include <cctype>

#include "util/string_util.h"

namespace arbiter {

namespace {

// Maximum recursion depth before parsing fails with kInvalidArgument.
// Deep enough for any sane formula, shallow enough that hostile inputs
// ("(((((...x...)))))", "!!!!...x") cannot overflow the stack even
// under sanitizers' smaller frames.
constexpr int kMaxParseDepth = 1000;

// A single-pass tokenizer + recursive-descent parser.
class Parser {
 public:
  Parser(const std::string& text, Vocabulary* vocab, ParseMode mode)
      : text_(text), vocab_(vocab), mode_(mode) {}

  Result<Formula> Run() {
    Result<Formula> f = ParseIff();
    if (!f.ok()) return f;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("unexpected trailing input");
    }
    return f;
  }

 private:
  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(msg + " at position " +
                                   std::to_string(pos_) + " in \"" + text_ +
                                   "\"");
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  // Consumes `tok` if it is next (after whitespace); returns true on match.
  bool Eat(const char* tok) {
    SkipSpace();
    size_t len = 0;
    while (tok[len] != '\0') ++len;
    if (text_.compare(pos_, len, tok) != 0) return false;
    // Word tokens must not be glued to identifier characters.
    if (IsIdentStart(tok[0])) {
      size_t end = pos_ + len;
      if (end < text_.size() && IsIdentCont(text_[end])) return false;
    }
    pos_ += len;
    return true;
  }

  Result<Formula> ParseIff() {
    Result<Formula> lhs = ParseImplies();
    if (!lhs.ok()) return lhs;
    Formula acc = *lhs;
    while (Eat("<->") || Eat("iff")) {
      Result<Formula> rhs = ParseImplies();
      if (!rhs.ok()) return rhs;
      acc = Iff(acc, *rhs);
    }
    return acc;
  }

  Result<Formula> ParseImplies() {
    Result<Formula> lhs = ParseXor();
    if (!lhs.ok()) return lhs;
    if (Eat("->") || Eat("implies")) {
      Result<Formula> rhs = ParseImplies();  // right associative
      if (!rhs.ok()) return rhs;
      return Implies(*lhs, *rhs);
    }
    return lhs;
  }

  Result<Formula> ParseXor() {
    Result<Formula> lhs = ParseOr();
    if (!lhs.ok()) return lhs;
    Formula acc = *lhs;
    while (true) {
      SkipSpace();
      // '^' but also guard: nothing else starts with '^'.
      if (Eat("xor") || Eat("^")) {
        Result<Formula> rhs = ParseOr();
        if (!rhs.ok()) return rhs;
        acc = Xor(acc, *rhs);
      } else {
        return acc;
      }
    }
  }

  Result<Formula> ParseOr() {
    Result<Formula> lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    std::vector<Formula> parts = {*lhs};
    while (Eat("||") || Eat("|") || Eat("\\/") || Eat("or")) {
      Result<Formula> rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      parts.push_back(*rhs);
    }
    if (parts.size() == 1) return parts[0];
    return Or(std::move(parts));
  }

  Result<Formula> ParseAnd() {
    Result<Formula> lhs = ParseUnary();
    if (!lhs.ok()) return lhs;
    std::vector<Formula> parts = {*lhs};
    while (Eat("&&") || Eat("&") || Eat("/\\") || Eat("and")) {
      Result<Formula> rhs = ParseUnary();
      if (!rhs.ok()) return rhs;
      parts.push_back(*rhs);
    }
    if (parts.size() == 1) return parts[0];
    return And(std::move(parts));
  }

  Result<Formula> ParseUnary() {
    // Every unbounded recursion path (nested parens, `!` chains,
    // right-associative `->`) passes through here, so one depth guard
    // bounds the parser's stack: without it a hostile input like
    // "((((...x...))))" crashes the process instead of failing.
    if (++depth_ > kMaxParseDepth) {
      return Status::InvalidArgument(
          "formula nesting exceeds the limit of " +
          std::to_string(kMaxParseDepth));
    }
    Result<Formula> out = [&]() -> Result<Formula> {
      if (Eat("!") || Eat("~") || Eat("not")) {
        Result<Formula> operand = ParseUnary();
        if (!operand.ok()) return operand;
        return Not(*operand);
      }
      return ParseAtom();
    }();
    --depth_;
    return out;
  }

  Result<Formula> ParseAtom() {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    if (Eat("(")) {
      Result<Formula> inner = ParseIff();
      if (!inner.ok()) return inner;
      if (!Eat(")")) return Error("expected ')'");
      return inner;
    }
    if (Eat("true")) return Formula::True();
    if (Eat("false")) return Formula::False();
    char c = text_[pos_];
    if (!IsIdentStart(c)) {
      return Error(std::string("unexpected character '") + c + "'");
    }
    size_t start = pos_;
    while (pos_ < text_.size() && IsIdentCont(text_[pos_])) ++pos_;
    std::string name = text_.substr(start, pos_ - start);
    Result<int> idx = (mode_ == ParseMode::kAutoRegister)
                          ? vocab_->GetOrAddTerm(name)
                          : vocab_->Lookup(name);
    if (!idx.ok()) return idx.status();
    return Formula::Var(*idx);
  }

  const std::string& text_;
  Vocabulary* vocab_;
  ParseMode mode_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<Formula> Parse(const std::string& text, Vocabulary* vocab,
                      ParseMode mode) {
  ARBITER_CHECK(vocab != nullptr);
  return Parser(text, vocab, mode).Run();
}

Result<Formula> ParseSynthetic(const std::string& text, int num_terms) {
  Vocabulary vocab = Vocabulary::Synthetic(num_terms);
  return Parse(text, &vocab, ParseMode::kAutoRegister);
}

Formula MustParse(const std::string& text, Vocabulary* vocab) {
  Result<Formula> f = Parse(text, vocab);
  ARBITER_CHECK_MSG(f.ok(), f.status().ToString().c_str());
  return *f;
}

}  // namespace arbiter
