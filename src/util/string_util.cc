#include "util/string_util.h"

#include <cctype>

namespace arbiter {

std::string Join(const std::vector<std::string>& pieces,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentCont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '\'';
}

bool ParseInt64(const std::string& s, int64_t* out) {
  size_t i = 0;
  const bool negative = !s.empty() && s[0] == '-';
  if (negative) i = 1;
  if (i == s.size()) return false;
  uint64_t magnitude = 0;
  const uint64_t limit =
      negative ? (1ull << 63) : (1ull << 63) - 1;  // |INT64_MIN|, INT64_MAX
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
    const uint64_t digit = static_cast<uint64_t>(s[i] - '0');
    if (magnitude > (limit - digit) / 10) return false;
    magnitude = magnitude * 10 + digit;
  }
  *out = negative ? -static_cast<int64_t>(magnitude - 1) - 1
                  : static_cast<int64_t>(magnitude);
  return true;
}

}  // namespace arbiter
