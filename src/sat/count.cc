#include "sat/count.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>

#include "util/logging.h"

namespace arbiter::sat {
namespace {

using U128 = unsigned __int128;

/// A subproblem's answer: model count over an explicit variable set,
/// plus per-variable true-counts.  `ones` may be empty when count == 0
/// (everything is zero then).
struct SubResult {
  U128 count = 0;
  std::unordered_map<int, U128> ones;
};

/// Canonical serialization of a clause list: literal codes sorted
/// within each clause, clauses sorted lexicographically.  Variables
/// are *not* renamed, so cached per-variable tallies attribute to the
/// right columns on a hit.
std::string SerializeClauses(std::vector<std::vector<Lit>> clauses) {
  for (auto& c : clauses) {
    std::sort(c.begin(), c.end(),
              [](Lit a, Lit b) { return a.code() < b.code(); });
  }
  std::sort(clauses.begin(), clauses.end(),
            [](const std::vector<Lit>& a, const std::vector<Lit>& b) {
              return std::lexicographical_compare(
                  a.begin(), a.end(), b.begin(), b.end(),
                  [](Lit x, Lit y) { return x.code() < y.code(); });
            });
  std::string key;
  for (const auto& c : clauses) {
    for (Lit l : c) {
      key += std::to_string(l.code());
      key += ',';
    }
    key += ';';
  }
  return key;
}

struct Counter {
  std::unordered_map<std::string, SubResult> cache;
  uint64_t steps_left;
  bool aborted = false;
  uint64_t cache_hits = 0;
  uint64_t components_solved = 0;

  /// Counts models of `clauses` over the variable universe `vars`
  /// (a sorted vector that contains every variable occurring in
  /// `clauses`, and possibly more — extras are unconstrained and
  /// contribute a free factor of 2 each).
  SubResult Count(std::vector<std::vector<Lit>> clauses,
                  const std::vector<int>& vars);

  /// Counts one connected component whose variable set is exactly the
  /// variables occurring in its clauses.  Cached.
  SubResult CountComponent(std::vector<std::vector<Lit>> clauses,
                           const std::vector<int>& vars);
};

/// Applies `var := value` to `clauses` in place: satisfied clauses are
/// dropped, falsified literals removed.  Returns false on an empty
/// (falsified) clause.
bool Reduce(std::vector<std::vector<Lit>>* clauses, int var, bool value) {
  size_t out = 0;
  for (size_t i = 0; i < clauses->size(); ++i) {
    std::vector<Lit>& c = (*clauses)[i];
    bool satisfied = false;
    size_t keep = 0;
    for (size_t j = 0; j < c.size(); ++j) {
      Lit l = c[j];
      if (l.var() == var) {
        if (l.negated() != value) satisfied = true;  // literal is true
        continue;                                    // literal resolved
      }
      c[keep++] = l;
    }
    if (satisfied) continue;
    c.resize(keep);
    if (c.empty()) return false;
    if (out != i) (*clauses)[out] = std::move(c);
    ++out;
  }
  clauses->resize(out);
  return true;
}

SubResult Counter::Count(std::vector<std::vector<Lit>> clauses,
                         const std::vector<int>& vars) {
  if (aborted) return SubResult{};
  // Unit propagation to fixpoint.
  std::unordered_map<int, bool> assigned;
  bool conflict = false;
  bool changed = true;
  while (changed && !conflict) {
    changed = false;
    for (const auto& c : clauses) {
      if (c.size() == 1) {
        Lit l = c[0];
        assigned[l.var()] = !l.negated();
        if (!Reduce(&clauses, l.var(), !l.negated())) conflict = true;
        changed = true;
        break;
      }
    }
  }
  if (conflict) return SubResult{};

  // Partition the residual clauses into connected components.
  std::unordered_map<int, int> root;  // var -> union-find parent slot
  std::vector<int> parent;
  auto find = [&](int slot) {
    while (parent[slot] != slot) {
      parent[slot] = parent[parent[slot]];
      slot = parent[slot];
    }
    return slot;
  };
  auto slot_of = [&](int var) {
    auto it = root.find(var);
    if (it != root.end()) return it->second;
    int slot = static_cast<int>(parent.size());
    parent.push_back(slot);
    root.emplace(var, slot);
    return slot;
  };
  std::vector<int> clause_slot(clauses.size(), -1);
  for (size_t i = 0; i < clauses.size(); ++i) {
    int first = slot_of(clauses[i][0].var());
    for (Lit l : clauses[i]) {
      int a = find(first), b = find(slot_of(l.var()));
      if (a != b) parent[a] = b;
    }
    clause_slot[i] = find(first);
  }

  std::unordered_map<int, std::vector<std::vector<Lit>>> comp_clauses;
  for (size_t i = 0; i < clauses.size(); ++i) {
    comp_clauses[find(clause_slot[i])].push_back(std::move(clauses[i]));
  }

  SubResult result;
  result.count = 1;
  std::vector<std::pair<U128, SubResult>> parts;  // (count, sub)
  int unconstrained = 0;
  std::vector<int> free_unconstrained;
  {
    // Classify every universe variable: assigned, in a component, or
    // unconstrained.
    for (int v : vars) {
      if (assigned.count(v)) continue;
      if (!root.count(v)) {
        ++unconstrained;
        free_unconstrained.push_back(v);
      }
    }
  }
  if (unconstrained >= 120) {  // 2^120 would overflow the combine math
    aborted = true;
    return SubResult{};
  }

  for (auto& [slot, cls] : comp_clauses) {
    std::vector<int> comp_vars;
    for (const auto& c : cls) {
      for (Lit l : c) comp_vars.push_back(l.var());
    }
    std::sort(comp_vars.begin(), comp_vars.end());
    comp_vars.erase(std::unique(comp_vars.begin(), comp_vars.end()),
                    comp_vars.end());
    SubResult sub = CountComponent(std::move(cls), comp_vars);
    if (aborted) return SubResult{};
    if (sub.count == 0) return SubResult{};  // whole product is zero
    parts.emplace_back(sub.count, std::move(sub));
  }

  U128 total = static_cast<U128>(1) << unconstrained;
  for (const auto& [c, sub] : parts) total *= c;

  result.count = total;
  for (const auto& [c, sub] : parts) {
    const U128 scale = total / c;  // exact: total = c * (rest)
    for (const auto& [v, ones] : sub.ones) result.ones[v] = ones * scale;
  }
  for (int v : free_unconstrained) result.ones[v] = total / 2;
  for (const auto& [v, value] : assigned) {
    result.ones[v] = value ? total : 0;
  }
  return result;
}

SubResult Counter::CountComponent(std::vector<std::vector<Lit>> clauses,
                                  const std::vector<int>& vars) {
  if (aborted) return SubResult{};
  if (steps_left == 0) {
    aborted = true;
    return SubResult{};
  }
  --steps_left;

  const std::string key = SerializeClauses(clauses);
  auto it = cache.find(key);
  if (it != cache.end()) {
    ++cache_hits;
    return it->second;
  }
  ++components_solved;

  // Branch on the most frequent variable (ties: lowest index).
  std::unordered_map<int, int> occurrences;
  for (const auto& c : clauses) {
    for (Lit l : c) ++occurrences[l.var()];
  }
  int branch = -1, best = -1;
  for (int v : vars) {
    auto oc = occurrences.find(v);
    const int n = oc == occurrences.end() ? 0 : oc->second;
    if (n > best) {
      best = n;
      branch = v;
    }
  }
  ARBITER_DCHECK(branch >= 0);

  std::vector<int> rest;
  rest.reserve(vars.size() - 1);
  for (int v : vars) {
    if (v != branch) rest.push_back(v);
  }

  SubResult combined;
  for (bool value : {false, true}) {
    std::vector<std::vector<Lit>> reduced = clauses;
    if (!Reduce(&reduced, branch, value)) continue;  // branch conflicts
    SubResult sub = Count(std::move(reduced), rest);
    if (aborted) return SubResult{};
    combined.count += sub.count;
    if (value) combined.ones[branch] += sub.count;
    for (const auto& [v, ones] : sub.ones) combined.ones[v] += ones;
  }
  cache.emplace(key, combined);
  return combined;
}

}  // namespace

ColumnCountResult CountColumns(const CnfFormula& cnf, int num_inputs,
                               uint64_t max_steps) {
  ARBITER_CHECK(num_inputs >= 0 && num_inputs <= cnf.NumVars());
  ColumnCountResult result;
  result.ones.assign(num_inputs, 0);
  if (cnf.contradiction()) return result;

  // Preprocess: drop tautologies, dedupe literals within clauses.
  std::vector<std::vector<Lit>> clauses;
  clauses.reserve(cnf.clauses().size());
  for (const auto& raw : cnf.clauses()) {
    std::vector<Lit> c = raw;
    std::sort(c.begin(), c.end(),
              [](Lit a, Lit b) { return a.code() < b.code(); });
    c.erase(std::unique(c.begin(), c.end(),
                        [](Lit a, Lit b) { return a.code() == b.code(); }),
            c.end());
    bool tautology = false;
    for (size_t i = 0; i + 1 < c.size(); ++i) {
      if (c[i].var() == c[i + 1].var()) tautology = true;
    }
    if (!tautology) clauses.push_back(std::move(c));
  }

  std::vector<int> vars(cnf.NumVars());
  for (int v = 0; v < cnf.NumVars(); ++v) vars[v] = v;

  Counter counter;
  counter.steps_left = max_steps;
  SubResult sub = counter.Count(std::move(clauses), vars);
  result.cache_hits = counter.cache_hits;
  result.components_solved = counter.components_solved;
  if (counter.aborted) {
    result.completed = false;
    return result;
  }
  result.total = sub.count;
  for (int b = 0; b < num_inputs; ++b) {
    auto it = sub.ones.find(b);
    result.ones[b] = it == sub.ones.end() ? 0 : it->second;
  }
  return result;
}

}  // namespace arbiter::sat
