#ifndef ARBITER_TEST_SUPPORT_FUZZ_GENERATORS_H_
#define ARBITER_TEST_SUPPORT_FUZZ_GENERATORS_H_

#include <string>
#include <vector>

#include "kb/weighted_kb.h"
#include "logic/vocabulary.h"
#include "model/model_set.h"
#include "util/random.h"

/// \file fuzz_generators.h
/// Randomized workload generators for the differential fuzz harness:
/// vocabularies, formula texts, model sets, weighted bases, and
/// BeliefStore op scripts (including deliberately invalid ops that
/// exercise the store's error paths).  All generators are deterministic
/// in the caller's Rng, so every fuzz case is reproducible from its
/// seed.

namespace arbiter::test_support {

/// A vocabulary of `n` terms with n drawn uniformly from
/// [min_terms, max_terms].
Vocabulary RandomVocabulary(Rng* rng, int min_terms, int max_terms);

/// Parseable text of a random formula over `vocab` (random AST, then
/// pretty-printed).  Requires vocab nonempty.
std::string RandomFormulaText(Rng* rng, const Vocabulary& vocab,
                              int max_depth);

/// A random nonempty model set over `num_terms` terms.
ModelSet RandomModelSet(Rng* rng, int num_terms, double density);

/// A random satisfiable weighted base: each interpretation gets a
/// positive weight with probability `density`, drawn from a mix of
/// small integers, halves, and large magnitudes.
WeightedKnowledgeBase RandomWeightedBase(Rng* rng, int num_terms,
                                         double density);

/// One step of a random BeliefStore workload.  Bad variants carry
/// malformed formulas, unknown operators/bases, or capacity bombs, and
/// are expected (though not required) to fail.
struct StoreOp {
  enum class Kind {
    kDefine,
    kApply,
    kUndo,
    kDrop,
    kEntails,
    kConsistentWith,
    kBadDefine,       ///< malformed or capacity-exceeding formula
    kBadApply,        ///< unknown operator, bad evidence, or bad base
    kBadQuery,        ///< Entails/ConsistentWith with bad input
  };
  Kind kind;
  std::string base;
  std::string op_name;  ///< kApply/kBadApply only
  std::string text;     ///< formula payload

  std::string ToString() const;
};

/// A script of `length` ops over a small pool of base names; each op
/// is a bad variant with probability `bad_prob`.
std::vector<StoreOp> RandomStoreScript(Rng* rng, const Vocabulary& vocab,
                                       int length, double bad_prob);

/// A randomly generated `.belief` script (src/store/script.h language).
struct BeliefScriptCase {
  std::string text;
  /// True iff an error-grade defect was injected.  Ill-formed scripts
  /// carry exactly one defect from a set arblint certainly reports as
  /// an error (unknown keyword, use-before-define, unknown operator,
  /// malformed formula, undo with empty history, capacity bomb).
  bool ill_formed = false;
};

/// Generates `.belief` script text over `vocab`'s atoms.  With
/// probability `bad_prob` the script is ill-formed (see above);
/// otherwise it is well-formed by construction: it parses, lints clean
/// of error-severity diagnostics outside the flow/ family, and executes
/// without hard errors (assertions may still fail, which flow/
/// assert-fails may prove in advance).  Conditionals guard arbitrary
/// statements on already-defined bases — branch-local changes, undos,
/// redefines, and nested conditionals one level deep — with undo only
/// emitted where the generator's own depth interval proves every path
/// still has history.  The differential harness cross-checks this
/// contract and holds flow verdicts against the concrete run report.
BeliefScriptCase RandomBeliefScript(Rng* rng, const Vocabulary& vocab,
                                    int length, double bad_prob);

}  // namespace arbiter::test_support

#endif  // ARBITER_TEST_SUPPORT_FUZZ_GENERATORS_H_
