// Tests for AllSAT model enumeration and DIMACS I/O.

#include <gtest/gtest.h>

#include "enc/tseitin.h"
#include "logic/generator.h"
#include "logic/parser.h"
#include "logic/semantics.h"
#include "sat/all_sat.h"
#include "sat/solver.h"
#include "sat/dimacs.h"

namespace arbiter::sat {
namespace {

TEST(AllSatTest, EnumeratesAllModelsOfSmallFormula) {
  Solver solver;
  enc::TseitinEncoder encoder(&solver);
  encoder.ReserveInputVars(3);
  Vocabulary v = Vocabulary::Synthetic(3);
  Formula f = MustParse("p0 | p1", &v);
  encoder.Assert(f);
  AllSatOptions options;
  options.num_project = 3;
  std::vector<uint64_t> models = CollectAllSat(&solver, options);
  EXPECT_EQ(models, EnumerateModels(f, 3));
}

TEST(AllSatTest, ProjectionDeduplicates) {
  // p0 | aux with aux free: projecting onto {p0} must yield each p0
  // value at most once.
  Solver solver;
  Var p0 = solver.NewVar();
  Var aux = solver.NewVar();
  solver.AddBinary(Lit::Pos(p0), Lit::Pos(aux));
  AllSatOptions options;
  options.num_project = 1;
  std::vector<uint64_t> models = CollectAllSat(&solver, options);
  EXPECT_EQ(models, (std::vector<uint64_t>{0, 1}));
}

TEST(AllSatTest, MaxModelsStopsEarly) {
  Solver solver;
  enc::TseitinEncoder encoder(&solver);
  encoder.ReserveInputVars(4);
  encoder.Assert(Formula::True());
  AllSatOptions options;
  options.num_project = 4;
  options.max_models = 5;
  int64_t count = EnumerateAllSat(&solver, options,
                                  [](uint64_t) { return true; });
  EXPECT_EQ(count, 5);
}

TEST(AllSatTest, CallbackCanAbort) {
  Solver solver;
  enc::TseitinEncoder encoder(&solver);
  encoder.ReserveInputVars(4);
  encoder.Assert(Formula::True());
  AllSatOptions options;
  options.num_project = 4;
  int calls = 0;
  EnumerateAllSat(&solver, options, [&](uint64_t) {
    ++calls;
    return calls < 3;
  });
  EXPECT_EQ(calls, 3);
}

TEST(AllSatTest, UnsatYieldsNoModels) {
  Solver solver;
  Var a = solver.NewVar();
  solver.AddUnit(Lit::Pos(a));
  solver.AddUnit(Lit::Neg(a));
  AllSatOptions options;
  options.num_project = 1;
  EXPECT_TRUE(CollectAllSat(&solver, options).empty());
}

TEST(AllSatTest, RandomFormulasMatchBruteForce) {
  Rng rng(555);
  RandomFormulaOptions fopts;
  fopts.num_terms = 5;
  for (int i = 0; i < 50; ++i) {
    Formula f = RandomFormula(&rng, fopts);
    Solver solver;
    enc::TseitinEncoder encoder(&solver);
    encoder.ReserveInputVars(5);
    encoder.Assert(f);
    AllSatOptions options;
    options.num_project = 5;
    EXPECT_EQ(CollectAllSat(&solver, options), EnumerateModels(f, 5))
        << "round " << i;
  }
}

TEST(DimacsTest, ParseBasic) {
  auto r = ParseDimacs("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_vars, 3);
  ASSERT_EQ(r->clauses.size(), 2u);
  EXPECT_EQ(r->clauses[0][0], Lit::Pos(0));
  EXPECT_EQ(r->clauses[0][1], Lit::Neg(1));
}

TEST(DimacsTest, ParseMultiLineClause) {
  auto r = ParseDimacs("p cnf 2 1\n1\n-2 0\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->clauses.size(), 1u);
  EXPECT_EQ(r->clauses[0].size(), 2u);
}

TEST(DimacsTest, Errors) {
  EXPECT_FALSE(ParseDimacs("").ok());
  EXPECT_FALSE(ParseDimacs("1 2 0\n").ok());          // clause first
  EXPECT_FALSE(ParseDimacs("p cnf 1 1\n2 0\n").ok()); // var out of range
  EXPECT_FALSE(ParseDimacs("p cnf 1 1\n1\n").ok());   // unterminated
  EXPECT_FALSE(ParseDimacs("p dnf 1 1\n1 0\n").ok()); // wrong format tag
}

TEST(DimacsTest, ClauseCountMustMatchHeader) {
  // Too few clauses: a truncated file must not parse silently.
  EXPECT_FALSE(ParseDimacs("p cnf 2 2\n1 0\n").ok());
  // Too many clauses.
  EXPECT_FALSE(ParseDimacs("p cnf 2 1\n1 0\n-2 0\n").ok());
  // Exact match still parses, including the zero-clause instance.
  EXPECT_TRUE(ParseDimacs("p cnf 2 2\n1 0\n-2 0\n").ok());
  EXPECT_TRUE(ParseDimacs("p cnf 2 0\n").ok());
}

TEST(DimacsTest, RoundTrip) {
  CnfInstance inst;
  inst.num_vars = 4;
  inst.clauses = {{Lit::Pos(0), Lit::Neg(3)}, {Lit::Pos(2)}};
  auto r = ParseDimacs(ToDimacs(inst));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_vars, 4);
  EXPECT_EQ(r->clauses, inst.clauses);
}

TEST(DimacsTest, SolveParsedInstance) {
  auto r = ParseDimacs("p cnf 2 3\n1 2 0\n-1 2 0\n1 -2 0\n");
  ASSERT_TRUE(r.ok());
  Solver s;
  for (int i = 0; i < r->num_vars; ++i) s.NewVar();
  for (const auto& clause : r->clauses) s.AddClause(clause);
  ASSERT_EQ(s.Solve(), SolveStatus::kSat);
  EXPECT_TRUE(s.ModelValue(0));
  EXPECT_TRUE(s.ModelValue(1));
}

}  // namespace
}  // namespace arbiter::sat
