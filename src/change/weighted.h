#ifndef ARBITER_CHANGE_WEIGHTED_H_
#define ARBITER_CHANGE_WEIGHTED_H_

#include <string>
#include <vector>

#include "kb/weighted_kb.h"
#include "model/distance_semantics.h"

/// \file weighted.h
/// Weighted model-fitting and weighted arbitration (paper, Section 4).
///
/// The concrete operator ranks interpretations by
///   wdist(ψ̃, I) = Σ_J dist(I, J) · ψ̃(J)
/// and applies the paper's weighted Min:
///   Mod(ψ̃ ▷ μ̃)(I) = μ̃(I) if I ∈ Min(support(μ̃), ≤ψ̃) else 0.
///
/// Weighted arbitration is ψ̃ Δ φ̃ = (ψ̃ ∨ φ̃) ▷ M̃ with M̃ uniform weight
/// one (Corollary 4.1).

namespace arbiter {

/// A binary weighted theory change operator.
class WeightedChangeOperator {
 public:
  virtual ~WeightedChangeOperator() = default;
  virtual std::string name() const = 0;
  virtual WeightedKnowledgeBase Change(
      const WeightedKnowledgeBase& psi,
      const WeightedKnowledgeBase& mu) const = 0;
};

/// The paper's wdist-based weighted model-fitting operator.
class WdistFitting : public WeightedChangeOperator {
 public:
  std::string name() const override { return "wdist-fitting"; }
  WeightedKnowledgeBase Change(
      const WeightedKnowledgeBase& psi,
      const WeightedKnowledgeBase& mu) const override;
};

/// wdist fitting under an arbitrary per-atom metric: ranks by
/// Σ_J metric-dist(I, J) · ψ̃(J).  The unit metric reproduces
/// WdistFitting exactly; a non-unit metric is the Section 4 operator
/// over a rescaled interpretation space (still a loyal assignment —
/// the sum aggregator preserves strictness regardless of the metric).
class MetricWdistFitting : public WeightedChangeOperator {
 public:
  explicit MetricWdistFitting(std::vector<int64_t> metric);

  std::string name() const override { return "metric-wdist-fitting"; }
  WeightedKnowledgeBase Change(
      const WeightedKnowledgeBase& psi,
      const WeightedKnowledgeBase& mu) const override;

 private:
  DistanceSemantics semantics_;
};

/// Weighted arbitration: (ψ̃ ∨ φ̃) ▷ M̃.
class WeightedArbitration : public WeightedChangeOperator {
 public:
  std::string name() const override { return "weighted-arbitration"; }
  WeightedKnowledgeBase Change(
      const WeightedKnowledgeBase& psi,
      const WeightedKnowledgeBase& phi) const override;
};

}  // namespace arbiter

#endif  // ARBITER_CHANGE_WEIGHTED_H_
