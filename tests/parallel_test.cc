// Parallel-vs-serial equivalence property tests for the thread-pool
// execution layer: for random formulas/model sets and thread counts
// {1, 2, 7}, every fitting/merge operator must return a bit-identical
// ModelSet and every postulate checker must report identical verdicts
// and counterexamples.  Also pins the bounded-kernel contract and the
// ParallelFor/ParallelReduce primitives.

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <vector>

#include "change/fitting.h"
#include "change/merge.h"
#include "change/revision.h"
#include "change/weighted.h"
#include "kb/weighted_kb.h"
#include "model/distance.h"
#include "model/preorder.h"
#include "postulates/checker.h"
#include "postulates/commutative_checker.h"
#include "postulates/weighted_checker.h"
#include "util/bit.h"
#include "util/parallel.h"
#include "util/random.h"

namespace arbiter {
namespace {

// Thread counts exercised by every equivalence test: serial, the
// smallest parallel pool, and an odd count that misaligns with chunk
// boundaries.
const int kThreadCounts[] = {1, 2, 7};

// Restores the default pool size when a test exits.
struct ThreadCountGuard {
  ~ThreadCountGuard() { ThreadPool::Instance().SetNumThreads(0); }
};

ModelSet RandomSet(Rng* rng, int n, double density) {
  std::vector<uint64_t> masks;
  for (uint64_t m = 0; m < (1ULL << n); ++m) {
    if (rng->NextBool(density)) masks.push_back(m);
  }
  return ModelSet::FromMasks(std::move(masks), n);
}

// ---- Reference (seed) implementations: serial, unpruned. ----

int RefOverallDist(const ModelSet& psi, uint64_t i) {
  int worst = -1;
  for (uint64_t j : psi) worst = std::max(worst, Dist(i, j));
  return worst;
}

int64_t RefSumDist(const ModelSet& psi, uint64_t i) {
  int64_t total = 0;
  for (uint64_t j : psi) total += Dist(i, j);
  return total;
}

ModelSet RefMinByInt(const ModelSet& s,
                     const std::function<int64_t(uint64_t)>& rank) {
  if (s.empty()) return ModelSet(s.num_terms());
  int64_t best = std::numeric_limits<int64_t>::max();
  for (uint64_t m : s) best = std::min(best, rank(m));
  std::vector<uint64_t> out;
  for (uint64_t m : s) {
    if (rank(m) == best) out.push_back(m);
  }
  return ModelSet::FromMasks(std::move(out), s.num_terms());
}

ModelSet RefMaxFitting(const ModelSet& psi, const ModelSet& mu) {
  if (psi.empty() || mu.empty()) return ModelSet(mu.num_terms());
  return RefMinByInt(
      mu, [&psi](uint64_t i) { return int64_t{1} * RefOverallDist(psi, i); });
}

ModelSet RefSumFitting(const ModelSet& psi, const ModelSet& mu) {
  if (psi.empty() || mu.empty()) return ModelSet(mu.num_terms());
  return RefMinByInt(mu, [&psi](uint64_t i) { return RefSumDist(psi, i); });
}

// ---- Thread pool primitives ----

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadCountGuard guard;
  for (int threads : kThreadCounts) {
    ThreadPool::Instance().SetNumThreads(threads);
    for (uint64_t size : {0ULL, 1ULL, 5ULL, 513ULL, 4096ULL}) {
      for (uint64_t grain : {1ULL, 3ULL, 64ULL, 10000ULL}) {
        std::vector<std::atomic<int>> hits(size);
        for (auto& h : hits) h.store(0);
        ParallelFor(0, size, grain, [&](uint64_t lo, uint64_t hi) {
          ASSERT_LE(lo, hi);
          for (uint64_t i = lo; i < hi; ++i) {
            hits[i].fetch_add(1);
          }
        });
        for (uint64_t i = 0; i < size; ++i) {
          ASSERT_EQ(hits[i].load(), 1)
              << "index " << i << " size " << size << " grain " << grain
              << " threads " << threads;
        }
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelReduceFoldsInChunkOrder) {
  ThreadCountGuard guard;
  for (int threads : kThreadCounts) {
    ThreadPool::Instance().SetNumThreads(threads);
    // Concatenation is non-commutative, so this also pins fold order.
    std::string joined = ParallelReduce<std::string>(
        0, 26, 3, "",
        [](uint64_t lo, uint64_t hi) {
          std::string part;
          for (uint64_t i = lo; i < hi; ++i) {
            part.push_back(static_cast<char>('a' + i));
          }
          return part;
        },
        [](std::string acc, const std::string& part) { return acc + part; });
    EXPECT_EQ(joined, "abcdefghijklmnopqrstuvwxyz");

    int64_t total = ParallelReduce<int64_t>(
        5, 1000, 7, 0,
        [](uint64_t lo, uint64_t hi) {
          int64_t s = 0;
          for (uint64_t i = lo; i < hi; ++i) s += static_cast<int64_t>(i);
          return s;
        },
        [](int64_t a, int64_t b) { return a + b; });
    EXPECT_EQ(total, 999LL * 1000 / 2 - 10);
  }
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadCountGuard guard;
  ThreadPool::Instance().SetNumThreads(4);
  std::atomic<int64_t> total{0};
  ParallelFor(0, 64, 4, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) {
      ParallelFor(0, 100, 9, [&](uint64_t ilo, uint64_t ihi) {
        total.fetch_add(static_cast<int64_t>(ihi - ilo));
      });
    }
  });
  EXPECT_EQ(total.load(), 64 * 100);
}

// ---- Bounded kernel contract ----

TEST(BoundedKernelTest, OverallDistExactBelowBound) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 2 + static_cast<int>(rng.NextBelow(8));
    ModelSet psi = RandomSet(&rng, n, 0.4);
    if (psi.empty()) continue;
    const uint64_t i = rng.Next() & LowMask(n);
    const int exact = RefOverallDist(psi, i);
    EXPECT_EQ(OverallDist(psi, i), exact);
    for (int bound = 0; bound <= n + 1; ++bound) {
      const int got = OverallDistBounded(psi, i, bound);
      if (got < bound) {
        EXPECT_EQ(got, exact) << "bound " << bound;
      } else {
        EXPECT_GE(exact, bound) << "bound " << bound;
      }
    }
  }
}

TEST(BoundedKernelTest, SumDistExactBelowBound) {
  Rng rng(8);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 2 + static_cast<int>(rng.NextBelow(8));
    ModelSet psi = RandomSet(&rng, n, 0.4);
    const uint64_t i = rng.Next() & LowMask(n);
    const int64_t exact = RefSumDist(psi, i);
    EXPECT_EQ(SumDist(psi, i), exact);
    for (int64_t bound : {int64_t{0}, int64_t{1}, exact / 2, exact,
                          exact + 1, exact + 100}) {
      const int64_t got = SumDistBounded(psi, i, bound);
      if (got < bound) {
        EXPECT_EQ(got, exact) << "bound " << bound;
      } else {
        EXPECT_GE(exact, bound) << "bound " << bound;
      }
    }
  }
}

// ---- Operator equivalence across thread counts ----

TEST(ParallelEquivalenceTest, FittingAndRevisionOperators) {
  ThreadCountGuard guard;
  MaxFitting max_fit;
  SumFitting sum_fit;
  DalalRevision dalal;
  Rng rng(42);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 1 + static_cast<int>(rng.NextBelow(12));
    const double density = trial % 3 == 0 ? 0.05 : 0.3;
    ModelSet psi = RandomSet(&rng, n, density);
    ModelSet mu = RandomSet(&rng, n, density);
    const ModelSet ref_max = RefMaxFitting(psi, mu);
    const ModelSet ref_sum = RefSumFitting(psi, mu);
    ThreadPool::Instance().SetNumThreads(1);
    const ModelSet serial_dalal = dalal.Change(psi, mu);
    for (int threads : kThreadCounts) {
      ThreadPool::Instance().SetNumThreads(threads);
      EXPECT_EQ(max_fit.Change(psi, mu), ref_max)
          << "revesz-max n=" << n << " threads=" << threads;
      EXPECT_EQ(sum_fit.Change(psi, mu), ref_sum)
          << "revesz-sum n=" << n << " threads=" << threads;
      EXPECT_EQ(dalal.Change(psi, mu), serial_dalal)
          << "dalal n=" << n << " threads=" << threads;
    }
  }
}

TEST(ParallelEquivalenceTest, ArbitrationOperators) {
  ThreadCountGuard guard;
  ArbitrationOperator arb_max = MakeMaxArbitration();
  ArbitrationOperator arb_sum = MakeSumArbitration();
  Rng rng(43);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 1 + static_cast<int>(rng.NextBelow(10));
    ModelSet psi = RandomSet(&rng, n, 0.25);
    ModelSet phi = RandomSet(&rng, n, 0.25);
    ThreadPool::Instance().SetNumThreads(1);
    const ModelSet serial_max = arb_max.Change(psi, phi);
    const ModelSet serial_sum = arb_sum.Change(psi, phi);
    // The serial path must agree with the seed semantics: fit the full
    // universe to the union.
    EXPECT_EQ(serial_max, RefMaxFitting(psi.Union(phi), ModelSet::Full(n)));
    for (int threads : kThreadCounts) {
      ThreadPool::Instance().SetNumThreads(threads);
      EXPECT_EQ(arb_max.Change(psi, phi), serial_max) << "threads=" << threads;
      EXPECT_EQ(arb_sum.Change(psi, phi), serial_sum) << "threads=" << threads;
    }
  }
}

TEST(ParallelEquivalenceTest, MergeAggregates) {
  ThreadCountGuard guard;
  Rng rng(44);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 2 + static_cast<int>(rng.NextBelow(9));
    std::vector<ModelSet> sources;
    const int k = 2 + static_cast<int>(rng.NextBelow(3));
    for (int s = 0; s < k; ++s) sources.push_back(RandomSet(&rng, n, 0.3));
    ModelSet mu = RandomSet(&rng, n, 0.5);
    for (MergeAggregate agg : {MergeAggregate::kSum, MergeAggregate::kGMax,
                               MergeAggregate::kMax}) {
      ThreadPool::Instance().SetNumThreads(1);
      const ModelSet serial = Merge(sources, mu, agg);
      for (int threads : kThreadCounts) {
        ThreadPool::Instance().SetNumThreads(threads);
        EXPECT_EQ(Merge(sources, mu, agg), serial)
            << MergeAggregateName(agg) << " n=" << n
            << " threads=" << threads;
      }
    }
  }
}

TEST(ParallelEquivalenceTest, WeightedFitting) {
  ThreadCountGuard guard;
  WdistFitting fitting;
  Rng rng(45);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 1 + static_cast<int>(rng.NextBelow(8));
    auto random_wkb = [&]() {
      WeightedKnowledgeBase kb(n);
      for (uint64_t m = 0; m < (1ULL << n); ++m) {
        if (rng.NextBool(0.5)) kb.SetWeight(m, 1 + rng.NextBelow(9));
      }
      return kb;
    };
    WeightedKnowledgeBase psi = random_wkb();
    WeightedKnowledgeBase mu = random_wkb();
    ThreadPool::Instance().SetNumThreads(1);
    const WeightedKnowledgeBase serial = fitting.Change(psi, mu);
    for (int threads : kThreadCounts) {
      ThreadPool::Instance().SetNumThreads(threads);
      EXPECT_TRUE(fitting.Change(psi, mu) == serial)
          << "n=" << n << " threads=" << threads;
    }
  }
}

// ---- Checker equivalence across thread counts ----

bool SameCex(const std::optional<PostulateCounterexample>& a,
             const std::optional<PostulateCounterexample>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a.has_value()) return true;
  return a->postulate == b->postulate && a->psi1 == b->psi1 &&
         a->psi2 == b->psi2 && a->mu1 == b->mu1 && a->mu2 == b->mu2 &&
         a->phi == b->phi;
}

TEST(ParallelEquivalenceTest, PostulateCheckerMatrixTwoTerms) {
  ThreadCountGuard guard;
  ThreadPool::Instance().SetNumThreads(1);
  PostulateChecker serial(std::make_shared<MaxFitting>(), 2);
  std::vector<ComplianceEntry> expected = serial.ComplianceMatrix();
  for (int threads : {2, 7}) {
    ThreadPool::Instance().SetNumThreads(threads);
    PostulateChecker checker(std::make_shared<MaxFitting>(), 2);
    std::vector<ComplianceEntry> got = checker.ComplianceMatrix();
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].satisfied, expected[i].satisfied)
          << PostulateName(expected[i].postulate) << " threads=" << threads;
      EXPECT_TRUE(SameCex(got[i].counterexample, expected[i].counterexample))
          << PostulateName(expected[i].postulate) << " threads=" << threads;
    }
  }
}

TEST(ParallelEquivalenceTest, PostulateCheckerThreeTermSlices) {
  ThreadCountGuard guard;
  // Three terms = the 256-code universe where the sweep actually fans
  // out.  A8 fails for revesz-max (EXPERIMENTS.md E4), so this pins a
  // real counterexample tuple; A1 passes, pinning the no-cex path.
  const Postulate probes[] = {Postulate::kA1, Postulate::kA7, Postulate::kA8};
  ThreadPool::Instance().SetNumThreads(1);
  PostulateChecker serial(std::make_shared<MaxFitting>(), 3);
  std::vector<std::optional<PostulateCounterexample>> expected;
  for (Postulate p : probes) expected.push_back(serial.CheckExhaustive(p));
  for (int threads : {2, 7}) {
    ThreadPool::Instance().SetNumThreads(threads);
    PostulateChecker checker(std::make_shared<MaxFitting>(), 3);
    for (size_t i = 0; i < std::size(probes); ++i) {
      EXPECT_TRUE(SameCex(checker.CheckExhaustive(probes[i]), expected[i]))
          << PostulateName(probes[i]) << " threads=" << threads;
    }
  }
}

TEST(ParallelEquivalenceTest, CommutativeChecker) {
  ThreadCountGuard guard;
  auto op = std::make_shared<ArbitrationOperator>(MakeMaxArbitration());
  ThreadPool::Instance().SetNumThreads(1);
  CommutativeChecker serial(op, 2);
  const std::vector<std::string> expected = serial.FailingPostulates();
  std::vector<std::string> expected_cex;
  for (CommutativePostulate p : AllCommutativePostulates()) {
    auto cex = serial.CheckExhaustive(p);
    expected_cex.push_back(cex.has_value() ? cex->Describe() : "-");
  }
  for (int threads : {2, 7}) {
    ThreadPool::Instance().SetNumThreads(threads);
    CommutativeChecker checker(op, 2);
    EXPECT_EQ(checker.FailingPostulates(), expected) << "threads=" << threads;
    size_t i = 0;
    for (CommutativePostulate p : AllCommutativePostulates()) {
      auto cex = checker.CheckExhaustive(p);
      EXPECT_EQ(cex.has_value() ? cex->Describe() : "-", expected_cex[i++])
          << "threads=" << threads;
    }
  }
}

TEST(ParallelEquivalenceTest, WeightedChecker) {
  ThreadCountGuard guard;
  WdistFitting fitting;
  ThreadPool::Instance().SetNumThreads(1);
  WeightedPostulateChecker serial(&fitting, 2);
  std::vector<std::string> expected;
  for (WeightedPostulate p :
       {WeightedPostulate::kF1, WeightedPostulate::kF2, WeightedPostulate::kF3,
        WeightedPostulate::kF4, WeightedPostulate::kF5, WeightedPostulate::kF6,
        WeightedPostulate::kF7, WeightedPostulate::kF8}) {
    auto cex = serial.CheckExhaustiveBinary(p);
    expected.push_back(cex.has_value() ? cex->description : "-");
  }
  for (int threads : {2, 7}) {
    ThreadPool::Instance().SetNumThreads(threads);
    WeightedPostulateChecker checker(&fitting, 2);
    size_t i = 0;
    for (WeightedPostulate p :
         {WeightedPostulate::kF1, WeightedPostulate::kF2,
          WeightedPostulate::kF3, WeightedPostulate::kF4,
          WeightedPostulate::kF5, WeightedPostulate::kF6,
          WeightedPostulate::kF7, WeightedPostulate::kF8}) {
      auto cex = checker.CheckExhaustiveBinary(p);
      EXPECT_EQ(cex.has_value() ? cex->description : "-", expected[i++])
          << "threads=" << threads;
    }
  }
}

// MinByIntBounded with a deliberately adversarial bounded rank: prunes
// aggressively but honors the contract.  Cross-checked against the
// unpruned reference on the same candidates.
TEST(ParallelEquivalenceTest, MinByIntBoundedContract) {
  ThreadCountGuard guard;
  Rng rng(46);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 2 + static_cast<int>(rng.NextBelow(11));
    ModelSet s = RandomSet(&rng, n, 0.6);
    if (s.empty()) continue;
    // Exact rank: bit-mix; bounded variant prunes via the contract.
    auto exact = [](uint64_t m) {
      return static_cast<int64_t>((m * 2654435761u) % 1009);
    };
    const ModelSet ref = RefMinByInt(s, exact);
    for (int threads : kThreadCounts) {
      ThreadPool::Instance().SetNumThreads(threads);
      const ModelSet got = MinByIntBounded(
          s, [&exact](uint64_t m, int64_t bound) {
            const int64_t r = exact(m);
            return r >= bound ? bound : r;  // abort certificate
          });
      EXPECT_EQ(got, ref) << "n=" << n << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace arbiter
