// Executable Theorem 4.1: the weighted representation construction.

#include "postulates/weighted_representation.h"

#include <gtest/gtest.h>

#include "model/distance.h"

namespace arbiter {
namespace {

TEST(WeightedRepresentationTest, WdistFittingPassesAllSteps) {
  WdistFitting op;
  for (int n = 2; n <= 3; ++n) {
    WeightedRepresentationReport report =
        CheckWeightedRepresentation(op, n, /*num_samples=*/40,
                                    /*seed=*/11 * n);
    EXPECT_TRUE(report.preorders_ok) << report.detail;
    EXPECT_TRUE(report.assignment_loyal) << report.detail;
    EXPECT_TRUE(report.representation_exact) << report.detail;
    EXPECT_TRUE(report.IsWeightedModelFitting());
  }
}

TEST(WeightedRepresentationTest, DerivedOrderMatchesWdist) {
  WdistFitting op;
  WeightedKnowledgeBase psi(3);
  psi.SetWeight(0b001, 10);
  psi.SetWeight(0b010, 20);
  psi.SetWeight(0b111, 5);
  TotalPreorder derived = DeriveWeightedPreorder(op, psi);
  for (uint64_t i = 0; i < 8; ++i) {
    for (uint64_t j = 0; j < 8; ++j) {
      EXPECT_EQ(derived.Leq(i, j),
                psi.WeightedDistTo(i) <= psi.WeightedDistTo(j))
          << i << " vs " << j;
    }
  }
}

TEST(WeightedRepresentationTest, WeightIgnoringMaxFailsLoyalty) {
  // The negative control from weighted_postulates_test: a max-over-
  // support operator ignores weights, so its derived assignment cannot
  // be loyal under the summed ∨.
  class WeightedMax : public WeightedChangeOperator {
   public:
    std::string name() const override { return "weighted-max"; }
    WeightedKnowledgeBase Change(
        const WeightedKnowledgeBase& psi,
        const WeightedKnowledgeBase& mu) const override {
      if (!psi.IsSatisfiable() || !mu.IsSatisfiable()) {
        return WeightedKnowledgeBase(mu.num_terms());
      }
      ModelSet support = psi.Support();
      TotalPreorder order(psi.num_terms(), [&support](uint64_t i) {
        return static_cast<double>(OverallDist(support, i));
      });
      return mu.MinimalBy(order);
    }
  };
  WeightedMax op;
  WeightedRepresentationReport report =
      CheckWeightedRepresentation(op, 2, /*num_samples=*/120, /*seed=*/3);
  EXPECT_TRUE(report.preorders_ok);
  EXPECT_TRUE(report.representation_exact)
      << "max IS Min-representable; only loyalty breaks";
  EXPECT_FALSE(report.assignment_loyal);
  EXPECT_FALSE(report.IsWeightedModelFitting());
}

TEST(WeightedRepresentationTest, UnsatisfiablePairsStillDeriveOrders) {
  // Degenerate psi with a single supported world: derived order ranks
  // by distance to that world.
  WdistFitting op;
  WeightedKnowledgeBase psi(2);
  psi.SetWeight(0b00, 4);
  TotalPreorder derived = DeriveWeightedPreorder(op, psi);
  EXPECT_TRUE(derived.Less(0b00, 0b01));
  EXPECT_TRUE(derived.Less(0b01, 0b11));
  EXPECT_TRUE(derived.Equiv(0b01, 0b10));
}

}  // namespace
}  // namespace arbiter
