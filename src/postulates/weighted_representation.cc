#include "postulates/weighted_representation.h"

#include <vector>

#include "util/logging.h"
#include "util/random.h"

namespace arbiter {

namespace {

/// Raw leq matrix derived from the operator.
std::vector<std::vector<bool>> DeriveLeq(const WeightedChangeOperator& op,
                                         const WeightedKnowledgeBase& psi) {
  const int n = psi.num_terms();
  const uint64_t space = 1ULL << n;
  std::vector<std::vector<bool>> leq(space, std::vector<bool>(space));
  for (uint64_t i = 0; i < space; ++i) {
    for (uint64_t j = 0; j < space; ++j) {
      WeightedKnowledgeBase pair(n);
      pair.SetWeight(i, 1.0);
      pair.SetWeight(j, 1.0);
      leq[i][j] = op.Change(psi, pair).Weight(i) > 0;
    }
  }
  return leq;
}

bool IsTotalPreorder(const std::vector<std::vector<bool>>& leq,
                     std::string* why) {
  const size_t space = leq.size();
  for (size_t i = 0; i < space; ++i) {
    if (!leq[i][i]) {
      *why = "not reflexive at " + std::to_string(i);
      return false;
    }
    for (size_t j = 0; j < space; ++j) {
      if (!leq[i][j] && !leq[j][i]) {
        *why = "not total at (" + std::to_string(i) + "," +
               std::to_string(j) + ")";
        return false;
      }
      if (!leq[i][j]) continue;
      for (size_t k = 0; k < space; ++k) {
        if (leq[j][k] && !leq[i][k]) {
          *why = "not transitive at (" + std::to_string(i) + "," +
                 std::to_string(j) + "," + std::to_string(k) + ")";
          return false;
        }
      }
    }
  }
  return true;
}

TotalPreorder LeqToPreorder(const std::vector<std::vector<bool>>& leq,
                            int num_terms) {
  const uint64_t space = leq.size();
  std::vector<double> ranks(space, 0);
  for (uint64_t i = 0; i < space; ++i) {
    int count = 0;
    for (uint64_t j = 0; j < space; ++j) {
      if (leq[j][i]) ++count;
    }
    ranks[i] = count;
  }
  return TotalPreorder(num_terms,
                       [ranks](uint64_t i) { return ranks[i]; });
}

WeightedKnowledgeBase RandomWkb(Rng* rng, int n) {
  static const double kPalette[] = {0.5, 1, 2, 3, 5, 10};
  WeightedKnowledgeBase kb(n);
  for (uint64_t m = 0; m < (1ULL << n); ++m) {
    if (rng->NextBool(0.6)) kb.SetWeight(m, kPalette[rng->NextBelow(6)]);
  }
  if (!kb.IsSatisfiable()) kb.SetWeight(rng->NextBelow(1ULL << n), 1.0);
  return kb;
}

}  // namespace

TotalPreorder DeriveWeightedPreorder(const WeightedChangeOperator& op,
                                     const WeightedKnowledgeBase& psi) {
  return LeqToPreorder(DeriveLeq(op, psi), psi.num_terms());
}

WeightedRepresentationReport CheckWeightedRepresentation(
    const WeightedChangeOperator& op, int num_terms, int num_samples,
    uint64_t seed) {
  ARBITER_CHECK(num_terms >= 1 && num_terms <= 6);
  WeightedRepresentationReport report;
  report.preorders_ok = true;
  report.assignment_loyal = true;
  report.representation_exact = true;
  Rng rng(seed);
  const uint64_t space = 1ULL << num_terms;

  for (int s = 0; s < num_samples; ++s) {
    WeightedKnowledgeBase psi = RandomWkb(&rng, num_terms);
    WeightedKnowledgeBase phi = RandomWkb(&rng, num_terms);

    // (1) Derived relations are total pre-orders.
    auto leq_psi = DeriveLeq(op, psi);
    std::string why;
    if (!IsTotalPreorder(leq_psi, &why)) {
      report.preorders_ok = false;
      if (report.detail.empty()) {
        report.detail = "derived relation broken: " + why;
      }
      continue;
    }

    // (2) Weighted loyalty with ∨ = pointwise sum.
    auto leq_phi = DeriveLeq(op, phi);
    auto leq_both = DeriveLeq(op, psi.Or(phi));
    for (uint64_t i = 0; i < space && report.assignment_loyal; ++i) {
      for (uint64_t j = 0; j < space; ++j) {
        bool strict_psi = leq_psi[i][j] && !leq_psi[j][i];
        bool weak_phi = leq_phi[i][j];
        bool weak_psi = leq_psi[i][j];
        bool strict_both = leq_both[i][j] && !leq_both[j][i];
        bool weak_both = leq_both[i][j];
        if (strict_psi && weak_phi && !strict_both) {
          report.assignment_loyal = false;
          if (report.detail.empty()) {
            report.detail = "weighted loyalty (2) fails at I=" +
                            std::to_string(i) + " J=" + std::to_string(j);
          }
          break;
        }
        if (weak_psi && weak_phi && !weak_both) {
          report.assignment_loyal = false;
          if (report.detail.empty()) {
            report.detail = "weighted loyalty (3) fails at I=" +
                            std::to_string(i) + " J=" + std::to_string(j);
          }
          break;
        }
      }
    }

    // (3) Min-representation against a sampled mu.
    WeightedKnowledgeBase mu = RandomWkb(&rng, num_terms);
    WeightedKnowledgeBase got = op.Change(psi, mu);
    WeightedKnowledgeBase want =
        mu.MinimalBy(LeqToPreorder(leq_psi, num_terms));
    if (!got.EquivalentTo(want)) {
      report.representation_exact = false;
      if (report.detail.empty()) {
        report.detail = "representation mismatch on sample " +
                        std::to_string(s);
      }
    }
  }
  return report;
}

}  // namespace arbiter
