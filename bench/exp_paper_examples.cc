// Experiments E1-E3, E9 (DESIGN.md): mechanical re-derivation of every
// worked example in the paper, printed side by side with the values
// the paper reports.

#include <cstdio>

#include "change/weighted.h"
#include "core/arbiter.h"
#include "logic/interpretation.h"
#include "model/distance.h"

namespace {

using namespace arbiter;

void Intro() {
  std::printf("== E1: Section 1 intro example ==\n");
  Arbiter arb({"A", "B", "C"});
  const Vocabulary& vocab = arb.vocabulary();
  KnowledgeBase psi = *arb.ParseKb("A & B & (A & B -> C)");
  KnowledgeBase mu = *arb.ParseKb("!C");
  std::printf("theory {A, B, A&B->C} changed by !C\n");
  std::printf("  revision (dalal):     %s\n",
              arb.Revise(psi, mu).models().ToString(vocab).c_str());
  std::printf("  update (winslett):    %s\n",
              arb.Update(psi, mu).models().ToString(vocab).c_str());
  std::printf("  fitting (revesz-max): %s\n",
              arb.Fit(psi, mu).models().ToString(vocab).c_str());
  std::printf("  arbitration:          %s\n\n",
              arb.Arbitrate(psi, mu).models().ToString(vocab).c_str());
}

void Example31() {
  std::printf("== E2: Example 3.1 (classroom) ==\n");
  Arbiter arb({"S", "D", "Q"});
  const Vocabulary& vocab = arb.vocabulary();
  KnowledgeBase mu = *arb.ParseKb("((!S & D) | (S & D)) & !Q");
  KnowledgeBase psi =
      *arb.ParseKb("(S & !D & !Q) | (!S & D & !Q) | (S & D & Q)");
  std::printf("%-28s %-10s %s\n", "quantity", "paper", "measured");
  std::printf("%-28s %-10s %d\n", "odist(psi, {D})", "2",
              OverallDist(psi.models(), 0b010));
  std::printf("%-28s %-10s %d\n", "odist(psi, {S,D})", "1",
              OverallDist(psi.models(), 0b011));
  std::printf("%-28s %-10s %s\n", "Mod(psi |> mu)", "{S,D}",
              arb.Fit(psi, mu).models().ToString(vocab).c_str());
  std::printf("\n");
}

void Example41() {
  std::printf("== E3: Example 4.1 (35 students, weighted) ==\n");
  Vocabulary vocab = Vocabulary::FromNames({"S", "D", "Q"}).ValueOrDie();
  WeightedKnowledgeBase mu(3);
  mu.SetWeight(0b010, 1.0);
  mu.SetWeight(0b011, 1.0);
  WeightedKnowledgeBase psi(3);
  psi.SetWeight(0b001, 10.0);
  psi.SetWeight(0b010, 20.0);
  psi.SetWeight(0b111, 5.0);
  WdistFitting op;
  std::printf("%-28s %-10s %s\n", "quantity", "paper", "measured");
  std::printf("%-28s %-10s %.0f\n", "wdist(psi, {D})", "30",
              psi.WeightedDistTo(0b010));
  std::printf("%-28s %-10s %.0f\n", "wdist(psi, {S,D})", "35",
              psi.WeightedDistTo(0b011));
  std::printf("%-28s %-10s %s\n", "Mod(psi |> mu)", "{D}:1",
              op.Change(psi, mu).ToString(vocab).c_str());
  std::printf("\n");
}

void Jury() {
  std::printf("== E9: Section 1 jury (9 vs 2 witnesses) ==\n");
  Vocabulary vocab =
      Vocabulary::FromNames({"A_started", "B_started"}).ValueOrDie();
  WeightedKnowledgeBase crowd(2);
  crowd.SetWeight(0b01, 9.0);
  crowd.SetWeight(0b10, 2.0);
  WeightedArbitration delta;
  WeightedKnowledgeBase verdict =
      delta.Change(crowd, WeightedKnowledgeBase(2));
  std::printf("verdict: %s  (majority: A started the fight)\n",
              verdict.ToString(vocab).c_str());
}

}  // namespace

int main() {
  Intro();
  Example31();
  Example41();
  Jury();
  return 0;
}
