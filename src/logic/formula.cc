#include "logic/formula.h"

#include <algorithm>

namespace arbiter {

namespace {

using internal::FormulaNode;

std::shared_ptr<const FormulaNode> MakeNode(FormulaKind kind, int var,
                                            std::vector<Formula> children) {
  auto node = std::make_shared<FormulaNode>();
  node->kind = kind;
  node->var = var;
  node->children = std::move(children);
  return node;
}

// Shared singletons for the constants.
const std::shared_ptr<const FormulaNode>& TrueNode() {
  static const auto& node =
      *new std::shared_ptr<const FormulaNode>(
          MakeNode(FormulaKind::kTrue, -1, {}));
  return node;
}

const std::shared_ptr<const FormulaNode>& FalseNode() {
  static const auto& node =
      *new std::shared_ptr<const FormulaNode>(
          MakeNode(FormulaKind::kFalse, -1, {}));
  return node;
}

struct FormulaFactory {
  static Formula Wrap(std::shared_ptr<const FormulaNode> node);
};

}  // namespace

Formula::Formula() : node_(FalseNode()) {}

Formula Formula::True() { return Formula(TrueNode()); }

Formula Formula::False() { return Formula(FalseNode()); }

Formula Formula::Var(int var) {
  ARBITER_CHECK(var >= 0);
  return Formula(MakeNode(FormulaKind::kVar, var, {}));
}

int Formula::Size() const {
  int n = 1;
  for (const Formula& c : children()) n += c.Size();
  return n;
}

int Formula::Depth() const {
  int d = 0;
  for (const Formula& c : children()) d = std::max(d, c.Depth());
  return d + 1;
}

int Formula::MaxVar() const {
  int m = is_var() ? var() : -1;
  for (const Formula& c : children()) m = std::max(m, c.MaxVar());
  return m;
}

bool Formula::Equals(const Formula& other) const {
  if (node_ == other.node_) return true;
  if (kind() != other.kind()) return false;
  if (is_var()) return var() == other.var();
  if (num_children() != other.num_children()) return false;
  for (int i = 0; i < num_children(); ++i) {
    if (!child(i).Equals(other.child(i))) return false;
  }
  return true;
}

uint64_t Formula::Hash() const {
  uint64_t h = 0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(kind()) + 1);
  if (is_var()) h ^= 0xBF58476D1CE4E5B9ULL * static_cast<uint64_t>(var() + 1);
  for (const Formula& c : children()) {
    h = (h ^ c.Hash()) * 0x94D049BB133111EBULL;
    h ^= h >> 29;
  }
  return h;
}

Formula Not(const Formula& f) {
  if (f.is_true()) return Formula::False();
  if (f.is_false()) return Formula::True();
  if (f.kind() == FormulaKind::kNot) return f.child(0);
  return Formula(MakeNode(FormulaKind::kNot, -1, {f}));
}

Formula And(std::vector<Formula> children) {
  std::vector<Formula> kept;
  kept.reserve(children.size());
  for (Formula& c : children) {
    if (c.is_false()) return Formula::False();
    if (c.is_true()) continue;
    kept.push_back(std::move(c));
  }
  if (kept.empty()) return Formula::True();
  if (kept.size() == 1) return kept[0];
  return Formula(MakeNode(FormulaKind::kAnd, -1, std::move(kept)));
}

Formula And(const Formula& a, const Formula& b) { return And({a, b}); }

Formula And(const Formula& a, const Formula& b, const Formula& c) {
  return And({a, b, c});
}

Formula Or(std::vector<Formula> children) {
  std::vector<Formula> kept;
  kept.reserve(children.size());
  for (Formula& c : children) {
    if (c.is_true()) return Formula::True();
    if (c.is_false()) continue;
    kept.push_back(std::move(c));
  }
  if (kept.empty()) return Formula::False();
  if (kept.size() == 1) return kept[0];
  return Formula(MakeNode(FormulaKind::kOr, -1, std::move(kept)));
}

Formula Or(const Formula& a, const Formula& b) { return Or({a, b}); }

Formula Or(const Formula& a, const Formula& b, const Formula& c) {
  return Or({a, b, c});
}

Formula Implies(const Formula& a, const Formula& b) {
  if (a.is_false() || b.is_true()) return Formula::True();
  if (a.is_true()) return b;
  if (b.is_false()) return Not(a);
  return Formula(MakeNode(FormulaKind::kImplies, -1, {a, b}));
}

Formula Iff(const Formula& a, const Formula& b) {
  if (a.is_true()) return b;
  if (b.is_true()) return a;
  if (a.is_false()) return Not(b);
  if (b.is_false()) return Not(a);
  return Formula(MakeNode(FormulaKind::kIff, -1, {a, b}));
}

Formula Xor(const Formula& a, const Formula& b) {
  if (a.is_false()) return b;
  if (b.is_false()) return a;
  if (a.is_true()) return Not(b);
  if (b.is_true()) return Not(a);
  return Formula(MakeNode(FormulaKind::kXor, -1, {a, b}));
}

}  // namespace arbiter
