// Tests for the SatELite-style preprocessing tier: bounded variable
// elimination, subsumption and self-subsuming resolution, the freeze
// API, model reconstruction for eliminated variables, assumption
// handling (auto-freezing, failed-assumption cores in original
// variable indices), and the preprocessing-disabled verbatim replay.

#include "sat/preprocessor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sat/dpll.h"

namespace arbiter::sat {
namespace {

// The instances below are tiny, so drop the production size floor for
// the whole binary: every Preprocess() here runs the real pipeline.
// (FloorSkipsPipelineOnTinyInstances restores it locally to test the
// floor itself.)
const bool kFloorDropped = [] {
  SetSatPreprocessMinClauses(0);
  return true;
}();

// x <-> (a AND b) as clauses; `x` is the classic BVE candidate shape.
void AddAndGate(SatPreprocessor* p, Var x, Var a, Var b) {
  p->AddBinary(Lit::Neg(x), Lit::Pos(a));
  p->AddBinary(Lit::Neg(x), Lit::Pos(b));
  p->AddTernary(Lit::Pos(x), Lit::Neg(a), Lit::Neg(b));
}

TEST(SatPreprocessorTest, EmptyFormulaIsSat) {
  SatPreprocessor p;
  EXPECT_EQ(p.Solve(), SolveStatus::kSat);
}

TEST(SatPreprocessorTest, EliminatesUnfrozenDefinition) {
  SatPreprocessor p;
  const Var a = p.NewVar();
  const Var b = p.NewVar();
  const Var x = p.NewVar();
  AddAndGate(&p, x, a, b);
  p.AddBinary(Lit::Pos(a), Lit::Pos(b));  // keep the instance nontrivial
  p.Freeze(a);
  p.Freeze(b);
  p.Preprocess();
  EXPECT_GE(p.pstats().eliminated_vars, 1u);
  ASSERT_EQ(p.Solve(), SolveStatus::kSat);
  // The eliminated variable still answers queries, consistently with
  // its definition.
  EXPECT_EQ(p.ModelValue(x), p.ModelValue(a) && p.ModelValue(b));
}

TEST(SatPreprocessorTest, FrozenVariablesAreNeverEliminated) {
  SatPreprocessor p;
  const Var a = p.NewVar();
  const Var b = p.NewVar();
  const Var x = p.NewVar();
  AddAndGate(&p, x, a, b);
  p.FreezeRange(0, 3);
  p.Preprocess();
  EXPECT_EQ(p.pstats().eliminated_vars, 0u);
  // Frozen variables stay addressable in later clauses.
  EXPECT_TRUE(p.AddUnit(Lit::Pos(x)));
  ASSERT_EQ(p.Solve(), SolveStatus::kSat);
  EXPECT_TRUE(p.ModelValue(a));
  EXPECT_TRUE(p.ModelValue(b));
}

TEST(SatPreprocessorTest, SubsumptionRemovesWeakerClause) {
  SatPreprocessor p;
  const Var a = p.NewVar();
  const Var b = p.NewVar();
  const Var c = p.NewVar();
  p.FreezeRange(0, 3);
  p.AddBinary(Lit::Pos(a), Lit::Pos(b));
  p.AddTernary(Lit::Pos(a), Lit::Pos(b), Lit::Pos(c));  // subsumed
  p.Preprocess();
  EXPECT_GE(p.pstats().subsumed_clauses, 1u);
  EXPECT_EQ(p.Solve(), SolveStatus::kSat);
}

TEST(SatPreprocessorTest, SelfSubsumingResolutionStrengthens) {
  SatPreprocessor p;
  const Var a = p.NewVar();
  const Var b = p.NewVar();
  const Var c = p.NewVar();
  p.FreezeRange(0, 3);
  // (a | b) and (a | ~b | c) resolve to (a | c), strengthening the
  // ternary in place.
  p.AddBinary(Lit::Pos(a), Lit::Pos(b));
  p.AddTernary(Lit::Pos(a), Lit::Neg(b), Lit::Pos(c));
  p.Preprocess();
  EXPECT_GE(p.pstats().strengthened_literals, 1u);
  EXPECT_EQ(p.Solve(), SolveStatus::kSat);
}

TEST(SatPreprocessorTest, RootUnitsPropagateBeforeSolving) {
  SatPreprocessor p;
  const Var a = p.NewVar();
  const Var b = p.NewVar();
  p.AddUnit(Lit::Pos(a));
  p.AddBinary(Lit::Neg(a), Lit::Pos(b));
  p.Preprocess();
  EXPECT_GE(p.pstats().fixed_vars, 2u);
  ASSERT_EQ(p.Solve(), SolveStatus::kSat);
  EXPECT_TRUE(p.ModelValue(a));
  EXPECT_TRUE(p.ModelValue(b));
}

TEST(SatPreprocessorTest, ContradictionDetectedAtRoot) {
  SatPreprocessor p;
  const Var a = p.NewVar();
  EXPECT_TRUE(p.AddUnit(Lit::Pos(a)));
  EXPECT_FALSE(p.AddUnit(Lit::Neg(a)));
  EXPECT_TRUE(p.InConflict());
  EXPECT_EQ(p.Solve(), SolveStatus::kUnsat);
}

TEST(SatPreprocessorTest, AssumptionVarsAutoFrozenOnLazyPreprocess) {
  SatPreprocessor p;
  const Var a = p.NewVar();
  const Var b = p.NewVar();
  const Var x = p.NewVar();
  AddAndGate(&p, x, a, b);
  // No explicit freezing: the lazy preprocess triggered by this solve
  // must freeze the assumption variable x rather than eliminate it.
  ASSERT_EQ(p.SolveAssuming({Lit::Pos(x)}), SolveStatus::kSat);
  EXPECT_TRUE(p.ModelValue(x));
  EXPECT_TRUE(p.ModelValue(a));
  EXPECT_TRUE(p.ModelValue(b));
  // The same engine answers the opposite assumption too.
  ASSERT_EQ(p.SolveAssuming({Lit::Neg(x)}), SolveStatus::kSat);
  EXPECT_FALSE(p.ModelValue(x));
  EXPECT_FALSE(p.ModelValue(a) && p.ModelValue(b));
}

TEST(SatPreprocessorTest, FailedAssumptionsInOriginalVariables) {
  SatPreprocessor p;
  const Var a = p.NewVar();
  const Var b = p.NewVar();
  const Var x = p.NewVar();  // unfrozen Tseitin-style auxiliary
  AddAndGate(&p, x, a, b);
  p.Freeze(a);
  p.Freeze(b);
  p.AddBinary(Lit::Neg(a), Lit::Neg(b));
  p.Preprocess();
  // a and b together violate (~a | ~b); the core must name the
  // original indices even though the solver renamed everything.
  ASSERT_EQ(p.SolveAssuming({Lit::Pos(a), Lit::Pos(b)}),
            SolveStatus::kUnsat);
  const std::vector<Lit>& core = p.FailedAssumptions();
  EXPECT_FALSE(core.empty());
  for (const Lit l : core) {
    EXPECT_TRUE(l == Lit::Pos(a) || l == Lit::Pos(b));
  }
}

TEST(SatPreprocessorTest, RootFixedAssumptionYieldsSingletonCore) {
  SatPreprocessor p;
  const Var a = p.NewVar();
  const Var b = p.NewVar();
  p.AddUnit(Lit::Pos(a));
  p.AddBinary(Lit::Neg(a), Lit::Pos(b));
  p.Preprocess();
  // b is fixed true at the root, so assuming ~b fails immediately and
  // alone.
  ASSERT_EQ(p.SolveAssuming({Lit::Neg(b)}), SolveStatus::kUnsat);
  ASSERT_EQ(p.FailedAssumptions().size(), 1u);
  EXPECT_EQ(p.FailedAssumptions()[0], Lit::Neg(b));
}

TEST(SatPreprocessorTest, EliminatedThenQueriedModelRegression) {
  // A chain of AND gates: x0 = a0 & a1, x1 = x0 & a2, ... with only the
  // inputs frozen.  Every gate output is eliminated; querying them
  // after a solve must reproduce the gate semantics exactly (this is
  // the model-reconstruction stack working through multiple layers).
  constexpr int kInputs = 6;
  SatPreprocessor p;
  std::vector<Var> in;
  for (int i = 0; i < kInputs; ++i) in.push_back(p.NewVar());
  p.FreezeRange(0, kInputs);
  std::vector<Var> gates;
  Var prev = in[0];
  for (int i = 1; i < kInputs; ++i) {
    const Var g = p.NewVar();
    AddAndGate(&p, g, prev, in[i]);
    gates.push_back(g);
    prev = g;
  }
  // Force a nontrivial model: the final gate must be false while the
  // first input is true.
  p.AddUnit(Lit::Pos(in[0]));
  p.AddUnit(Lit::Neg(gates.back()));
  p.Preprocess();
  EXPECT_GE(p.pstats().eliminated_vars, 1u);
  ASSERT_EQ(p.Solve(), SolveStatus::kSat);
  // Recompute every gate from the frozen inputs and compare.
  bool expected = p.ModelValue(in[0]);
  for (size_t i = 0; i < gates.size(); ++i) {
    expected = expected && p.ModelValue(in[i + 1]);
    EXPECT_EQ(p.ModelValue(gates[i]), expected) << "gate " << i;
  }
  EXPECT_FALSE(p.ModelValue(gates.back()));
}

TEST(SatPreprocessorTest, NewVarAndClausesAfterPreprocess) {
  SatPreprocessor p;
  const Var a = p.NewVar();
  const Var b = p.NewVar();
  p.Freeze(a);
  p.Freeze(b);
  p.AddBinary(Lit::Pos(a), Lit::Pos(b));
  p.Preprocess();
  // Layers built on top (diff bits, totalizers) create variables and
  // clauses after preprocessing; they must interoperate with frozen
  // originals.
  const Var d = p.NewVar();
  p.AddTernary(Lit::Neg(d), Lit::Pos(a), Lit::Pos(b));
  p.AddBinary(Lit::Pos(d), Lit::Neg(a));
  ASSERT_EQ(p.SolveAssuming({Lit::Pos(d)}), SolveStatus::kSat);
  EXPECT_TRUE(p.ModelValue(a) || p.ModelValue(b));
  ASSERT_EQ(p.SolveAssuming({Lit::Neg(d), Lit::Pos(a)}),
            SolveStatus::kUnsat);
}

TEST(SatPreprocessorTest, DisabledModeReplaysVerbatim) {
  SetSatPreprocessingEnabled(false);
  SatPreprocessor p;
  const Var a = p.NewVar();
  const Var b = p.NewVar();
  const Var x = p.NewVar();
  AddAndGate(&p, x, a, b);
  p.AddUnit(Lit::Pos(x));
  p.Preprocess();
  SetSatPreprocessingEnabled(true);
  EXPECT_EQ(p.pstats().eliminated_vars, 0u);
  ASSERT_EQ(p.Solve(), SolveStatus::kSat);
  EXPECT_TRUE(p.ModelValue(a));
  EXPECT_TRUE(p.ModelValue(b));
  EXPECT_TRUE(p.ModelValue(x));
}

TEST(SatPreprocessorTest, FloorSkipsPipelineOnTinyInstances) {
  // With the production size floor in place, a tiny instance takes the
  // identity-load path: nothing is eliminated, yet solving, models,
  // and later clauses all behave the same.
  SetSatPreprocessMinClauses(100);
  SatPreprocessor p;
  const Var a = p.NewVar();
  const Var b = p.NewVar();
  const Var x = p.NewVar();
  AddAndGate(&p, x, a, b);
  p.AddUnit(Lit::Pos(x));
  ASSERT_EQ(p.Solve(), SolveStatus::kSat);
  EXPECT_EQ(p.pstats().eliminated_vars, 0u);
  EXPECT_EQ(p.pstats().rounds, 0u);
  EXPECT_TRUE(p.ModelValue(a));
  EXPECT_TRUE(p.ModelValue(b));
  EXPECT_TRUE(p.ModelValue(x));
  // Incremental additions after the skipped pipeline still work.
  const Var y = p.NewVar();
  p.AddBinary(Lit::Neg(x), Lit::Pos(y));
  ASSERT_EQ(p.SolveAssuming({Lit::Neg(y)}), SolveStatus::kUnsat);
  SetSatPreprocessMinClauses(0);
}

TEST(SatPreprocessorTest, UnsatInstanceStaysUnsat) {
  // Pigeonhole(2): 3 pigeons, 2 holes, no projection; everything is an
  // elimination candidate and the instance must still come out UNSAT.
  SatPreprocessor p;
  constexpr int kPigeons = 3, kHoles = 2;
  Var v[kPigeons][kHoles];
  for (auto& row : v) {
    for (Var& slot : row) slot = p.NewVar();
  }
  for (const auto& row : v) {
    p.AddBinary(Lit::Pos(row[0]), Lit::Pos(row[1]));
  }
  for (int h = 0; h < kHoles; ++h) {
    for (int p1 = 0; p1 < kPigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < kPigeons; ++p2) {
        p.AddBinary(Lit::Neg(v[p1][h]), Lit::Neg(v[p2][h]));
      }
    }
  }
  EXPECT_EQ(p.Solve(), SolveStatus::kUnsat);
}

}  // namespace
}  // namespace arbiter::sat
