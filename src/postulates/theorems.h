#ifndef ARBITER_POSTULATES_THEOREMS_H_
#define ARBITER_POSTULATES_THEOREMS_H_

#include <memory>
#include <string>
#include <vector>

#include "change/operator.h"
#include "postulates/checker.h"

/// \file theorems.h
/// Executable verification of the paper's Theorem 3.2 (pairwise
/// disjointness of revision, update, and model-fitting) together with
/// traces of the Appendix B witness constructions.

namespace arbiter {

/// Result of checking one of the three impossibility claims for a
/// single operator: which of the premise axioms the operator satisfies
/// and whether the conclusion axiom fails.
struct DisjointnessRow {
  std::string op_name;
  std::vector<std::string> satisfied_premises;
  std::vector<std::string> violated_premises;
  bool conclusion_blocked;  ///< true iff op cannot satisfy the full set
  std::string detail;
};

/// Aggregate verification of Theorem 3.2 over a set of operators.
struct Theorem32Report {
  /// Claim 1: no operator satisfies both (R2) and (A8).
  std::vector<DisjointnessRow> r2_a8;
  /// Claim 2: no operator satisfies (U2), (U8), and (A8).
  std::vector<DisjointnessRow> u2_u8_a8;
  /// Claim 3: no operator satisfies (R1), (R2), (R3), and (U8).
  std::vector<DisjointnessRow> r123_u8;
  /// True iff no checked operator violated any claim.
  bool all_claims_hold = true;
};

/// Checks Theorem 3.2's three claims on each operator, exhaustively
/// over an n-term vocabulary (n <= 3).
Theorem32Report VerifyTheorem32(
    const std::vector<std::shared_ptr<const TheoryChangeOperator>>& ops,
    int num_terms);

/// Renders the Appendix B proof trace for claim 1 against a concrete
/// operator assumed to satisfy (R2):
///   psi1 = m1 ∨ m2, psi2 = m2, mu = m1 ∨ m2
/// and reports where (A8) forces the contradiction.
std::string TraceR2A8Witness(const TheoryChangeOperator& op, int num_terms);

/// Renders the Appendix B proof trace for claim 2 (U2 + U8 vs A8).
std::string TraceU2U8A8Witness(const TheoryChangeOperator& op,
                               int num_terms);

/// Renders the Appendix B proof trace for claim 3 (R1-R3 vs U8) with
/// three singletons m1, m2, m3.
std::string TraceR123U8Witness(const TheoryChangeOperator& op,
                               int num_terms);

}  // namespace arbiter

#endif  // ARBITER_POSTULATES_THEOREMS_H_
