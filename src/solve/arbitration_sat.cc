#include "solve/arbitration_sat.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "enc/totalizer.h"
#include "enc/tseitin.h"
#include "sat/preprocessor.h"
#include "solve/sat_bridge.h"

namespace arbiter::solve {

using sat::Lit;
using sat::SatPreprocessor;
using sat::SolveStatus;

int SatOverallDist(const Formula& psi, int num_terms, uint64_t point,
                   uint64_t* witness, const std::vector<int64_t>& metric) {
  ARBITER_CHECK(num_terms >= 1 && num_terms <= 63);
  SatPreprocessor solver;
  enc::TseitinEncoder encoder(&solver);
  encoder.ReserveInputVars(num_terms);
  if (!encoder.Assert(psi)) return -1;
  solver.FreezeRange(0, num_terms);  // the diff layer re-mentions them
  if (solver.Solve() != SolveStatus::kSat) return -1;

  auto extract = [&]() {
    uint64_t y = 0;
    for (int i = 0; i < num_terms; ++i) {
      if (solver.ModelValue(i)) y |= 1ULL << i;
    }
    return y;
  };
  uint64_t best_witness = extract();

  const std::vector<Lit> diffs =
      RepeatByWeights(MakeConstDiffLits(num_terms, point), metric);
  enc::Totalizer counter(&solver, diffs);
  // Largest k such that some y ⊨ ψ has dist(point, y) >= k.
  int lo = 0;
  int hi = static_cast<int>(diffs.size());
  while (lo < hi) {
    int mid = (lo + hi + 1) / 2;
    if (solver.SolveAssuming({counter.AtLeast(mid)}) == SolveStatus::kSat) {
      best_witness = extract();
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  if (witness != nullptr) *witness = best_witness;
  return lo;
}

namespace {

/// Shared master-problem state for the CEGAR loop.
struct Master {
  SatPreprocessor solver;
  int num_terms;
  std::vector<int64_t> metric;
  /// One unary counter per collected witness y: counts the (metric-
  /// weighted) bits where the candidate x differs from y.
  std::vector<std::unique_ptr<enc::Totalizer>> counters;

  Master(const Formula& mu, int n, std::vector<int64_t> m)
      : num_terms(n), metric(std::move(m)) {
    enc::TseitinEncoder encoder(&solver);
    encoder.ReserveInputVars(n);
    encoder.Assert(mu);
    // Inputs are revisited by every witness counter and blocking
    // clause; only μ's Tseitin auxiliaries may be eliminated.
    solver.FreezeRange(0, n);
    solver.Preprocess();
  }

  void AddWitness(uint64_t y) {
    counters.push_back(std::make_unique<enc::Totalizer>(
        &solver,
        RepeatByWeights(MakeConstDiffLits(num_terms, y), metric)));
  }

  /// Assumption set bounding the distance to every witness by k.
  std::vector<Lit> BoundAssumptions(int k) const {
    std::vector<Lit> out;
    for (const auto& c : counters) {
      if (k < c->size()) out.push_back(c->AtMost(k));
    }
    return out;
  }

  uint64_t ExtractModel() const {
    uint64_t x = 0;
    for (int i = 0; i < num_terms; ++i) {
      if (solver.ModelValue(i)) x |= 1ULL << i;
    }
    return x;
  }

  /// Permanently blocks the candidate x (projection on the inputs).
  bool Block(uint64_t x) {
    std::vector<Lit> clause;
    clause.reserve(num_terms);
    for (int i = 0; i < num_terms; ++i) {
      clause.push_back(Lit(i, /*negated=*/((x >> i) & 1) != 0));
    }
    return solver.AddClause(std::move(clause));
  }
};

/// Incremental oracle for the CEGAR verification queries.  One solver
/// holds x on [0, n) (free), y on [n, 2n) with ψ asserted, and a single
/// totalizer over the metric-weighted diff bits; a candidate is pinned
/// with n unit assumptions.  Every query reuses the learned clauses of
/// the previous ones — rebuilding a fresh `SatOverallDist` solver per
/// candidate made enumerating large tie sets quadratically expensive.
struct MaxDistOracle {
  SatPreprocessor solver;
  int num_terms;
  std::unique_ptr<enc::Totalizer> counter;
  int diameter = 0;

  MaxDistOracle(const Formula& psi, int n,
                const std::vector<int64_t>& metric)
      : num_terms(n) {
    enc::TseitinEncoder encoder(&solver);
    encoder.ReserveInputVars(2 * n);
    encoder.Assert(ShiftVars(psi, n));
    // The free x block [0, n) is pinned by assumptions each query and
    // the y block is read back from models — freeze both halves.
    solver.FreezeRange(0, 2 * n);
    solver.Preprocess();
    std::vector<Lit> diffs =
        RepeatByWeights(MakeDiffBits(&solver, n, n), metric);
    diameter = static_cast<int>(diffs.size());
    counter = std::make_unique<enc::Totalizer>(&solver, diffs);
  }

  /// Assumptions pinning the x block to the candidate.
  std::vector<Lit> Pin(uint64_t x) const {
    std::vector<Lit> out;
    out.reserve(num_terms);
    for (int i = 0; i < num_terms; ++i) {
      out.push_back(Lit(i, /*negated=*/((x >> i) & 1) == 0));
    }
    return out;
  }

  uint64_t ExtractWitness() const {
    uint64_t y = 0;
    for (int i = 0; i < num_terms; ++i) {
      if (solver.ModelValue(num_terms + i)) y |= 1ULL << i;
    }
    return y;
  }

  /// True iff some y ⊨ ψ has dist(x, y) > k; fills `witness` with it.
  bool Exceeds(uint64_t x, int k, uint64_t* witness) {
    if (k + 1 > diameter) return false;
    std::vector<Lit> assumptions = Pin(x);
    assumptions.push_back(counter->AtLeast(k + 1));
    if (solver.SolveAssuming(assumptions) != SolveStatus::kSat) return false;
    *witness = ExtractWitness();
    return true;
  }

  /// Exact odist(ψ, x) with a maximizing witness; -1 iff ψ is unsat.
  int MaxDist(uint64_t x, uint64_t* witness) {
    const std::vector<Lit> pin = Pin(x);
    if (solver.SolveAssuming(pin) != SolveStatus::kSat) return -1;
    *witness = ExtractWitness();
    int lo = 0;
    int hi = diameter;
    while (lo < hi) {
      int mid = (lo + hi + 1) / 2;
      std::vector<Lit> assumptions = pin;
      assumptions.push_back(counter->AtLeast(mid));
      if (solver.SolveAssuming(assumptions) == SolveStatus::kSat) {
        *witness = ExtractWitness();
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    return lo;
  }
};

}  // namespace

CegarResult CegarMaxFitting(const Formula& psi, const Formula& mu,
                            int num_terms, int64_t max_models,
                            const std::vector<int64_t>& metric) {
  ARBITER_CHECK(num_terms >= 1 && num_terms <= 63);
  CegarResult result;
  if (!SatIsSatisfiable(psi, num_terms)) return result;  // (A2)

  Master master(mu, num_terms, metric);
  if (master.solver.Solve() != SolveStatus::kSat) return result;  // μ unsat

  MaxDistOracle oracle(psi, num_terms, metric);

  // Each witness counter prunes every candidate too far from its y,
  // but costs a quadratic totalizer plus a permanent assumption, and a
  // master with hundreds of counters turns both loops quadratic.  Past
  // the cap, a settled candidate is blocked outright instead — sound
  // (an equal-distance candidate is stashed as a tie, a worse one can
  // never enter the result), just without the collective pruning.
  constexpr int kMaxWitnesses = 64;

  // Initialize the incumbent from any model of μ.
  uint64_t incumbent = master.ExtractModel();
  uint64_t y0 = 0;
  int best = oracle.MaxDist(incumbent, &y0);
  ARBITER_CHECK(best >= 0);
  master.AddWitness(y0);
  ++result.iterations;

  // Tighten: look for x ⊨ μ with all witness distances <= best - 1.
  // Blocked candidates with odist == best are kept aside; they belong
  // to the result iff `best` never improves past them.
  std::vector<uint64_t> ties;
  while (best > 0) {
    ++result.iterations;
    SolveStatus status =
        master.solver.SolveAssuming(master.BoundAssumptions(best - 1));
    if (status != SolveStatus::kSat) break;  // best is optimal
    uint64_t candidate = master.ExtractModel();
    uint64_t y = 0;
    int value = oracle.MaxDist(candidate, &y);
    ARBITER_CHECK(value >= 0);
    if (value < best) {
      best = value;
      incumbent = candidate;
      ties.clear();
    }
    if (static_cast<int>(master.counters.size()) < kMaxWitnesses) {
      // dist(candidate, y) = value >= best, so the new counter excludes
      // this candidate at every future threshold: guaranteed progress.
      master.AddWitness(y);
    } else {
      if (value == best) ties.push_back(candidate);
      if (!master.Block(candidate)) break;
    }
  }

  result.optimal_value = best;
  result.optimal_model = incumbent;

  // Enumerate all optimal models: the stashed ties plus candidates
  // passing the witness bounds at k = best, verified (recorded or
  // blocked) by a single incremental oracle query each.  The threshold
  // never moves again, so the witness bounds become unit clauses — the
  // solver propagates them once instead of re-assuming them per solve.
  result.models = std::move(ties);
  auto freeze_bounds = [&master, best](size_t from) {
    for (size_t i = from; i < master.counters.size(); ++i) {
      if (best < master.counters[i]->size()) {
        master.solver.AddUnit(master.counters[i]->AtMost(best));
      }
    }
  };
  freeze_bounds(0);
  while (static_cast<int64_t>(result.models.size()) <= max_models) {
    ++result.iterations;
    if (master.solver.Solve() != SolveStatus::kSat) break;
    uint64_t candidate = master.ExtractModel();
    uint64_t y = 0;
    if (!oracle.Exceeds(candidate, best, &y)) {
      result.models.push_back(candidate);
    } else if (static_cast<int>(master.counters.size()) < kMaxWitnesses) {
      const size_t from = master.counters.size();
      master.AddWitness(y);
      freeze_bounds(from);
    }
    if (!master.Block(candidate)) break;
  }
  if (static_cast<int64_t>(result.models.size()) > max_models) {
    result.models.resize(max_models);
    result.truncated = true;
  }
  std::sort(result.models.begin(), result.models.end());
  return result;
}

CegarResult CegarMaxArbitration(const Formula& psi, const Formula& phi,
                                int num_terms, int64_t max_models,
                                const std::vector<int64_t>& metric) {
  return CegarMaxFitting(Or(psi, phi), Formula::True(), num_terms,
                         max_models, metric);
}

}  // namespace arbiter::solve
