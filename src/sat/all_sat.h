#ifndef ARBITER_SAT_ALL_SAT_H_
#define ARBITER_SAT_ALL_SAT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "sat/engine.h"

/// \file all_sat.h
/// Model enumeration (AllSAT) on top of a SAT engine using blocking
/// clauses, with optional projection onto a variable prefix.  This is
/// how Mod(φ) is computed for formulas whose Tseitin encoding
/// introduces auxiliary variables.  Works against any `SatEngine` —
/// the plain CDCL solver or the preprocessing wrapper (whose freeze
/// API keeps the projected prefix intact).

namespace arbiter::sat {

/// Options for model enumeration.
struct AllSatOptions {
  /// Enumerate assignments projected onto variables [0, num_project).
  /// Each projected assignment is reported once.  Must be in (0, 64].
  int num_project = 0;
  /// Stop after this many models; <= 0 means unlimited.
  int64_t max_models = -1;
};

/// Enumerates the satisfying assignments of the clauses already loaded
/// into `solver`, projected onto the first `options.num_project`
/// variables.  Each model is reported as a bitmask (bit v == variable v
/// true) via `on_model`; enumeration stops early if `on_model` returns
/// false.  Returns the number of (projected) models reported.
///
/// The solver is left with the blocking clauses added; callers that
/// need to reuse it must account for that.
int64_t EnumerateAllSat(SatEngine* solver, const AllSatOptions& options,
                        const std::function<bool(uint64_t)>& on_model);

/// Convenience wrapper collecting all projected models, sorted.
std::vector<uint64_t> CollectAllSat(SatEngine* solver,
                                    const AllSatOptions& options);

}  // namespace arbiter::sat

#endif  // ARBITER_SAT_ALL_SAT_H_
