// Operator benchmarks (experiment E8a): time per Change call for every
// theory change operator as the vocabulary grows.  All operators are
// enumeration-based here; the SAT-based large-n arms live in
// bench_solve.cc.

#include <benchmark/benchmark.h>

#include "change/registry.h"
#include "util/parallel.h"
#include "util/random.h"

namespace {

using namespace arbiter;

struct Workload {
  ModelSet psi;
  ModelSet mu;
};

Workload MakeWorkload(int n, double density, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> mp, mm;
  for (uint64_t m = 0; m < (1ULL << n); ++m) {
    if (rng.NextBool(density)) mp.push_back(m);
    if (rng.NextBool(density)) mm.push_back(m);
  }
  if (mp.empty()) mp.push_back(0);
  if (mm.empty()) mm.push_back(1);
  return {ModelSet::FromMasks(std::move(mp), n),
          ModelSet::FromMasks(std::move(mm), n)};
}

void RunOperator(benchmark::State& state, const std::string& name) {
  const int n = static_cast<int>(state.range(0));
  auto op = MakeOperator(name).ValueOrDie();
  Workload w = MakeWorkload(n, 0.15, 42 + n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(op->Change(w.psi, w.mu));
  }
  state.counters["psi_models"] = static_cast<double>(w.psi.size());
  state.counters["mu_models"] = static_cast<double>(w.mu.size());
}

#define ARBITER_OP_BENCH(fn_name, op_name)                       \
  void fn_name(benchmark::State& state) {                        \
    RunOperator(state, op_name);                                 \
  }                                                              \
  BENCHMARK(fn_name)->Arg(8)->Arg(10)->Arg(12)

ARBITER_OP_BENCH(BM_Dalal, "dalal");
ARBITER_OP_BENCH(BM_Satoh, "satoh");
ARBITER_OP_BENCH(BM_Weber, "weber");
ARBITER_OP_BENCH(BM_Borgida, "borgida");
ARBITER_OP_BENCH(BM_Winslett, "winslett");
ARBITER_OP_BENCH(BM_Forbus, "forbus");
ARBITER_OP_BENCH(BM_ReveszMax, "revesz-max");
ARBITER_OP_BENCH(BM_ReveszSum, "revesz-sum");
ARBITER_OP_BENCH(BM_ArbitrationMax, "arbitration-max");
ARBITER_OP_BENCH(BM_ArbitrationSum, "arbitration-sum");

#undef ARBITER_OP_BENCH

// Thread sweep for the distance-minimizing operators: Args are
// {num_terms, num_threads}.  threads=1 is the serial (still pruned)
// path; higher counts exercise the pool.  Results are bit-identical
// across the sweep — only the wall clock moves.
void RunOperatorThreads(benchmark::State& state, const std::string& name) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  auto op = MakeOperator(name).ValueOrDie();
  Workload w = MakeWorkload(n, 0.15, 42 + n);
  ThreadPool::Instance().SetNumThreads(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(op->Change(w.psi, w.mu));
  }
  ThreadPool::Instance().SetNumThreads(0);
  state.counters["threads"] = threads;
  state.counters["mu_models"] = static_cast<double>(w.mu.size());
}

#define ARBITER_OP_THREAD_BENCH(fn_name, op_name)                 \
  void fn_name(benchmark::State& state) {                         \
    RunOperatorThreads(state, op_name);                           \
  }                                                               \
  BENCHMARK(fn_name)                                              \
      ->Args({14, 1})->Args({14, 2})->Args({14, 4})->Args({14, 8}) \
      ->Args({16, 1})->Args({16, 2})->Args({16, 4})->Args({16, 8})

ARBITER_OP_THREAD_BENCH(BM_ReveszMaxThreads, "revesz-max");
ARBITER_OP_THREAD_BENCH(BM_ReveszSumThreads, "revesz-sum");
ARBITER_OP_THREAD_BENCH(BM_DalalThreads, "dalal");

#undef ARBITER_OP_THREAD_BENCH

}  // namespace
