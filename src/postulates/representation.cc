#include "postulates/representation.h"

#include "util/logging.h"

namespace arbiter {

bool DerivedRelation::Total() const {
  const size_t space = leq.size();
  for (size_t i = 0; i < space; ++i) {
    for (size_t j = 0; j < space; ++j) {
      if (!leq[i][j] && !leq[j][i]) return false;
    }
  }
  return true;
}

bool DerivedRelation::Reflexive() const {
  for (size_t i = 0; i < leq.size(); ++i) {
    if (!leq[i][i]) return false;
  }
  return true;
}

bool DerivedRelation::Transitive() const {
  const size_t space = leq.size();
  for (size_t i = 0; i < space; ++i) {
    for (size_t j = 0; j < space; ++j) {
      if (!leq[i][j]) continue;
      for (size_t k = 0; k < space; ++k) {
        if (leq[j][k] && !leq[i][k]) return false;
      }
    }
  }
  return true;
}

ModelSet DerivedRelation::MinOf(const ModelSet& s) const {
  std::vector<uint64_t> out;
  for (uint64_t i : s) {
    bool minimal = true;
    for (uint64_t j : s) {
      // j < i  iff  j <= i and not i <= j.
      if (leq[j][i] && !leq[i][j]) {
        minimal = false;
        break;
      }
    }
    if (minimal) out.push_back(i);
  }
  return ModelSet::FromMasks(std::move(out), num_terms);
}

DerivedRelation DeriveRelation(const TheoryChangeOperator& op,
                               const ModelSet& psi) {
  const int n = psi.num_terms();
  ARBITER_CHECK(n >= 1 && n <= 4);
  ARBITER_CHECK(!psi.empty());
  const uint64_t space = 1ULL << n;
  DerivedRelation rel;
  rel.num_terms = n;
  rel.leq.assign(space, std::vector<bool>(space, false));
  for (uint64_t i = 0; i < space; ++i) {
    for (uint64_t j = 0; j < space; ++j) {
      ModelSet form_ij = ModelSet::FromMasks({i, j}, n);
      ModelSet fitted = op.Change(psi, form_ij);
      rel.leq[i][j] = fitted.Contains(i);
    }
  }
  return rel;
}

namespace {

/// Ranks a total pre-order so TotalPreorder (and CheckLoyalty) can
/// consume it: rank(I) = |{J : J ≤ I}| is order-preserving.
TotalPreorder ToTotalPreorder(const DerivedRelation& rel) {
  const uint64_t space = rel.leq.size();
  std::vector<double> ranks(space, 0.0);
  for (uint64_t i = 0; i < space; ++i) {
    int count = 0;
    for (uint64_t j = 0; j < space; ++j) {
      if (rel.leq[j][i]) ++count;
    }
    ranks[i] = static_cast<double>(count);
  }
  return TotalPreorder(rel.num_terms,
                       [ranks](uint64_t i) { return ranks[i]; });
}

ModelSet KbFromCode(uint64_t code, int n) {
  std::vector<uint64_t> masks;
  for (uint64_t m = 0; m < (1ULL << n); ++m) {
    if ((code >> m) & 1) masks.push_back(m);
  }
  return ModelSet::FromMasks(std::move(masks), n);
}

}  // namespace

RepresentationReport CheckRepresentation(
    std::shared_ptr<const TheoryChangeOperator> op, int num_terms) {
  ARBITER_CHECK(op != nullptr);
  ARBITER_CHECK(num_terms >= 1 && num_terms <= 3);
  RepresentationReport report;
  const uint64_t space = 1ULL << num_terms;
  const uint64_t num_codes = 1ULL << space;

  // Step (1): derive ≤ψ for every satisfiable ψ; check the pre-order
  // properties.
  std::vector<DerivedRelation> relations;
  relations.reserve(num_codes - 1);
  report.preorders_total = true;
  report.preorders_transitive = true;
  for (uint64_t code = 1; code < num_codes; ++code) {
    ModelSet psi = KbFromCode(code, num_terms);
    DerivedRelation rel = DeriveRelation(*op, psi);
    if (!(rel.Total() && rel.Reflexive())) {
      report.preorders_total = false;
      if (report.detail.empty()) {
        report.detail = "derived relation for psi=" + psi.ToString() +
                        " is not total/reflexive";
      }
    }
    if (!rel.Transitive()) {
      report.preorders_transitive = false;
      if (report.detail.empty()) {
        report.detail = "derived relation for psi=" + psi.ToString() +
                        " is not transitive";
      }
    }
    relations.push_back(std::move(rel));
  }

  // Step (2): loyalty of the derived assignment (only meaningful when
  // the relations are genuine total pre-orders).
  if (report.preorders_total && report.preorders_transitive) {
    PreorderAssignment assignment = [&](const ModelSet& psi) {
      uint64_t code = 0;
      for (uint64_t m : psi) code |= uint64_t{1} << m;
      return ToTotalPreorder(relations[code - 1]);
    };
    report.loyalty_violation = CheckLoyalty(assignment, num_terms);
    report.assignment_loyal = !report.loyalty_violation.has_value();
    if (!report.assignment_loyal && report.detail.empty()) {
      report.detail = report.loyalty_violation->Describe();
    }
  }

  // Step (3): the representation Mod(ψ ▷ μ) = Min(Mod(μ), ≤ψ).
  report.representation_exact = true;
  for (uint64_t pcode = 1; pcode < num_codes; ++pcode) {
    ModelSet psi = KbFromCode(pcode, num_terms);
    const DerivedRelation& rel = relations[pcode - 1];
    for (uint64_t mcode = 0; mcode < num_codes; ++mcode) {
      ModelSet mu = KbFromCode(mcode, num_terms);
      ModelSet got = op->Change(psi, mu);
      ModelSet want = rel.MinOf(mu);
      if (got != want) {
        report.representation_exact = false;
        if (report.detail.empty()) {
          report.detail = "representation mismatch at psi=" +
                          psi.ToString() + " mu=" + mu.ToString() +
                          ": operator gives " + got.ToString() +
                          ", Min gives " + want.ToString();
        }
        break;
      }
    }
    if (!report.representation_exact) break;
  }
  return report;
}

}  // namespace arbiter
