#include "store/script.h"

#include "util/string_util.h"

namespace arbiter {

namespace {

/// Consumes a leading word from *rest; returns false if none.
bool EatWord(std::string* rest, std::string* word) {
  *rest = Trim(*rest);
  size_t space = rest->find(' ');
  if (rest->empty()) return false;
  if (space == std::string::npos) {
    *word = *rest;
    rest->clear();
  } else {
    *word = rest->substr(0, space);
    *rest = Trim(rest->substr(space + 1));
  }
  return true;
}

/// Expects the next word to be exactly `expected`.
Status Expect(std::string* rest, const std::string& expected, int line) {
  std::string word;
  if (!EatWord(rest, &word) || word != expected) {
    return Status::InvalidArgument("line " + std::to_string(line) +
                                   ": expected '" + expected + "'");
  }
  return Status::OK();
}

Result<ScriptStatement> ParseStatement(std::string rest, int line);

Result<ScriptStatement> ParseAfterKeyword(const std::string& keyword,
                                          std::string rest, int line) {
  ScriptStatement stmt;
  stmt.line = line;
  auto err = [line](const std::string& msg) {
    return Status::InvalidArgument("line " + std::to_string(line) + ": " +
                                   msg);
  };
  if (keyword == "define") {
    // define <base> := <formula>
    if (!EatWord(&rest, &stmt.base)) return err("expected base name");
    ARBITER_RETURN_NOT_OK(Expect(&rest, ":=", line));
    if (rest.empty()) return err("expected a formula after ':='");
    stmt.kind = ScriptStatement::Kind::kDefine;
    stmt.formula = rest;
    return stmt;
  }
  if (keyword == "change") {
    // change <base> by <op> with <formula>
    if (!EatWord(&rest, &stmt.base)) return err("expected base name");
    ARBITER_RETURN_NOT_OK(Expect(&rest, "by", line));
    if (!EatWord(&rest, &stmt.op_name)) return err("expected operator");
    ARBITER_RETURN_NOT_OK(Expect(&rest, "with", line));
    if (rest.empty()) return err("expected a formula after 'with'");
    stmt.kind = ScriptStatement::Kind::kChange;
    stmt.formula = rest;
    return stmt;
  }
  if (keyword == "undo") {
    if (!EatWord(&rest, &stmt.base)) return err("expected base name");
    if (!rest.empty()) return err("trailing input after undo");
    stmt.kind = ScriptStatement::Kind::kUndo;
    return stmt;
  }
  if (keyword == "assert") {
    // assert <base> <relation> <formula>
    if (!EatWord(&rest, &stmt.base)) return err("expected base name");
    std::string relation;
    if (!EatWord(&rest, &relation)) return err("expected a relation");
    if (rest.empty()) return err("expected a formula");
    stmt.formula = rest;
    if (relation == "entails") {
      stmt.kind = ScriptStatement::Kind::kAssertEntails;
    } else if (relation == "consistent-with") {
      stmt.kind = ScriptStatement::Kind::kAssertConsistent;
    } else if (relation == "equivalent-to") {
      stmt.kind = ScriptStatement::Kind::kAssertEquivalent;
    } else {
      return err("unknown relation '" + relation +
                 "' (entails | consistent-with | equivalent-to)");
    }
    return stmt;
  }
  if (keyword == "set") {
    // set backend <name>  |  set weight <term> <integer>
    std::string what;
    if (!EatWord(&rest, &what)) {
      return err("expected 'backend' or 'weight' after 'set'");
    }
    if (what == "backend") {
      if (!EatWord(&rest, &stmt.formula)) return err("expected backend name");
      if (!rest.empty()) return err("trailing input after backend name");
      stmt.kind = ScriptStatement::Kind::kSetBackend;
      return stmt;
    }
    if (what == "weight") {
      if (!EatWord(&rest, &stmt.base)) return err("expected term name");
      if (!EatWord(&rest, &stmt.formula)) return err("expected a weight");
      if (!rest.empty()) return err("trailing input after weight");
      int64_t weight = 0;
      if (!ParseInt64(stmt.formula, &weight)) {
        return err("weight must be an integer, got '" + stmt.formula + "'");
      }
      stmt.kind = ScriptStatement::Kind::kSetWeight;
      return stmt;
    }
    return err("unknown set target '" + what + "' (backend | weight)");
  }
  if (keyword == "if") {
    // if <base> entails <formula> then <statement>
    if (!EatWord(&rest, &stmt.base)) return err("expected base name");
    ARBITER_RETURN_NOT_OK(Expect(&rest, "entails", line));
    size_t then_pos = rest.find(" then ");
    if (then_pos == std::string::npos) {
      return err("expected 'then' in conditional");
    }
    stmt.kind = ScriptStatement::Kind::kConditional;
    stmt.formula = Trim(rest.substr(0, then_pos));
    Result<ScriptStatement> inner =
        ParseStatement(Trim(rest.substr(then_pos + 6)), line);
    if (!inner.ok()) return inner.status();
    stmt.inner.push_back(*inner);
    return stmt;
  }
  return err("unknown statement '" + keyword + "'");
}

Result<ScriptStatement> ParseStatement(std::string rest, int line) {
  std::string keyword;
  if (!EatWord(&rest, &keyword)) {
    return Status::InvalidArgument("line " + std::to_string(line) +
                                   ": empty statement");
  }
  return ParseAfterKeyword(keyword, rest, line);
}

std::string Render(const ScriptStatement& stmt) {
  return RenderStatement(stmt);
}

}  // namespace

std::string RenderStatement(const ScriptStatement& stmt) {
  switch (stmt.kind) {
    case ScriptStatement::Kind::kDefine:
      return "define " + stmt.base + " := " + stmt.formula;
    case ScriptStatement::Kind::kChange:
      return "change " + stmt.base + " by " + stmt.op_name + " with " +
             stmt.formula;
    case ScriptStatement::Kind::kUndo:
      return "undo " + stmt.base;
    case ScriptStatement::Kind::kAssertEntails:
      return "assert " + stmt.base + " entails " + stmt.formula;
    case ScriptStatement::Kind::kAssertConsistent:
      return "assert " + stmt.base + " consistent-with " + stmt.formula;
    case ScriptStatement::Kind::kAssertEquivalent:
      return "assert " + stmt.base + " equivalent-to " + stmt.formula;
    case ScriptStatement::Kind::kConditional:
      return "if " + stmt.base + " entails " + stmt.formula + " then " +
             RenderStatement(stmt.inner[0]);
    case ScriptStatement::Kind::kSetBackend:
      return "set backend " + stmt.formula;
    case ScriptStatement::Kind::kSetWeight:
      return "set weight " + stmt.base + " " + stmt.formula;
  }
  return "?";
}

namespace {

/// Executes one statement; appends results to the report.  Returns
/// false on a hard error (which stops the run).
bool Execute(const ScriptStatement& stmt, BeliefStore* store,
             ScriptReport* report) {
  ScriptStepResult step;
  step.line = stmt.line;
  step.text = Render(stmt);
  auto hard_error = [&](const Status& status) {
    step.ok = false;
    step.detail = status.ToString();
    report->steps.push_back(step);
    ++report->failures;
    return false;
  };
  switch (stmt.kind) {
    case ScriptStatement::Kind::kDefine: {
      Status status = store->Define(stmt.base, stmt.formula);
      if (!status.ok()) return hard_error(status);
      step.ok = true;
      break;
    }
    case ScriptStatement::Kind::kChange: {
      Status status = store->Apply(stmt.base, stmt.op_name, stmt.formula);
      if (!status.ok()) return hard_error(status);
      step.ok = true;
      break;
    }
    case ScriptStatement::Kind::kUndo: {
      Status status = store->Undo(stmt.base);
      if (!status.ok()) return hard_error(status);
      step.ok = true;
      break;
    }
    case ScriptStatement::Kind::kAssertEntails:
    case ScriptStatement::Kind::kAssertConsistent:
    case ScriptStatement::Kind::kAssertEquivalent: {
      Result<bool> held = Status::Internal("unset");
      if (stmt.kind == ScriptStatement::Kind::kAssertEntails) {
        held = store->Entails(stmt.base, stmt.formula);
      } else if (stmt.kind == ScriptStatement::Kind::kAssertConsistent) {
        held = store->ConsistentWith(stmt.base, stmt.formula);
      } else {
        // Backend-aware equivalence (enumerates within kMaxEnumTerms,
        // CDCL beyond).
        held = store->EquivalentTo(stmt.base, stmt.formula);
      }
      if (!held.ok()) return hard_error(held.status());
      step.ok = *held;
      if (!step.ok) {
        step.detail = "assertion failed";
        ++report->failures;
      }
      break;
    }
    case ScriptStatement::Kind::kSetBackend: {
      Status status = store->SetBackend(stmt.formula);
      if (!status.ok()) return hard_error(status);
      step.ok = true;
      break;
    }
    case ScriptStatement::Kind::kSetWeight: {
      int64_t weight = 0;
      // Validated at parse time; re-parsed here to keep the statement
      // a plain value type.
      if (!ParseInt64(stmt.formula, &weight)) {
        return hard_error(Status::InvalidArgument(
            "weight must be an integer, got '" + stmt.formula + "'"));
      }
      Status status = store->SetWeight(stmt.base, weight);
      if (!status.ok()) return hard_error(status);
      step.ok = true;
      break;
    }
    case ScriptStatement::Kind::kConditional: {
      Result<bool> guard = store->Entails(stmt.base, stmt.formula);
      if (!guard.ok()) return hard_error(guard.status());
      if (!*guard) {
        step.ok = true;
        step.skipped = true;
        report->steps.push_back(step);
        return true;
      }
      step.ok = true;
      report->steps.push_back(step);
      return Execute(stmt.inner[0], store, report);
    }
  }
  report->steps.push_back(step);
  return true;
}

}  // namespace

std::string ScriptReport::ToString() const {
  std::string out;
  for (const ScriptStepResult& step : steps) {
    out += step.skipped ? "  skip " : (step.ok ? "  ok   " : "  FAIL ");
    out += "[line " + std::to_string(step.line) + "] " + step.text;
    if (!step.detail.empty()) out += "  -- " + step.detail;
    out += "\n";
    for (const std::string& finding : step.lint) {
      out += "       lint: " + finding + "\n";
    }
  }
  out += AllPassed() ? "all passed\n"
                     : std::to_string(failures) + " failure(s)\n";
  return out;
}

Result<BeliefScript> ParseScript(const std::string& text) {
  BeliefScript script;
  std::vector<std::string> lines = Split(text, '\n');
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string line = Trim(lines[i]);
    if (line.empty() || line[0] == '#') continue;
    Result<ScriptStatement> stmt =
        ParseStatement(line, static_cast<int>(i + 1));
    if (!stmt.ok()) return stmt.status();
    script.statements.push_back(*stmt);
  }
  return script;
}

ScriptReport RunScript(const BeliefScript& script, BeliefStore* store,
                       const ScriptLintHook& lint_hook) {
  ARBITER_CHECK(store != nullptr);
  ScriptReport report;
  for (const ScriptStatement& stmt : script.statements) {
    const size_t first_step = report.steps.size();
    const bool keep_going = Execute(stmt, store, &report);
    // Attach lint findings to the statement's first step (a conditional
    // contributes one step for the guard plus one for the inner
    // statement; findings anchor on the guard).
    if (lint_hook && report.steps.size() > first_step) {
      report.steps[first_step].lint = lint_hook(stmt);
    }
    if (!keep_going) break;
  }
  return report;
}

Result<ScriptReport> RunScriptText(const std::string& text,
                                   BeliefStore* store) {
  Result<BeliefScript> script = ParseScript(text);
  if (!script.ok()) return script.status();
  return RunScript(*script, store);
}

}  // namespace arbiter
