#include "change/properties.h"

#include <vector>

#include "util/logging.h"

namespace arbiter {

namespace {

/// Materializes every model set over an n-term vocabulary (including
/// the empty one), indexed by subset code.
std::vector<ModelSet> AllKbs(int num_terms) {
  ARBITER_CHECK(num_terms >= 1 && num_terms <= 3);
  const uint64_t space = 1ULL << num_terms;
  const uint64_t num_codes = 1ULL << space;
  std::vector<ModelSet> out;
  out.reserve(num_codes);
  for (uint64_t code = 0; code < num_codes; ++code) {
    std::vector<uint64_t> masks;
    for (uint64_t m = 0; m < space; ++m) {
      if ((code >> m) & 1) masks.push_back(m);
    }
    out.push_back(ModelSet::FromMasks(std::move(masks), num_terms));
  }
  return out;
}

}  // namespace

std::optional<PropertyCounterexample> CheckMonotone(
    const TheoryChangeOperator& op, int num_terms) {
  std::vector<ModelSet> kbs = AllKbs(num_terms);
  for (const ModelSet& psi : kbs) {
    for (const ModelSet& psi2 : kbs) {
      if (!psi.IsSubsetOf(psi2)) continue;
      for (const ModelSet& mu : kbs) {
        if (!op.Change(psi, mu).IsSubsetOf(op.Change(psi2, mu))) {
          return PropertyCounterexample{
              "monotone", "psi=" + psi.ToString() + " implies psi'=" +
                              psi2.ToString() + " but " + op.name() +
                              "(psi, " + mu.ToString() +
                              ") does not imply the changed psi'"};
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<PropertyCounterexample> CheckIdempotent(
    const TheoryChangeOperator& op, int num_terms) {
  std::vector<ModelSet> kbs = AllKbs(num_terms);
  for (const ModelSet& psi : kbs) {
    for (const ModelSet& mu : kbs) {
      ModelSet once = op.Change(psi, mu);
      ModelSet twice = op.Change(once, mu);
      if (once != twice) {
        return PropertyCounterexample{
            "idempotent", "psi=" + psi.ToString() + " mu=" +
                              mu.ToString() + ": once=" + once.ToString() +
                              " twice=" + twice.ToString()};
      }
    }
  }
  return std::nullopt;
}

std::optional<PropertyCounterexample> CheckCommutative(
    const TheoryChangeOperator& op, int num_terms) {
  std::vector<ModelSet> kbs = AllKbs(num_terms);
  for (const ModelSet& a : kbs) {
    for (const ModelSet& b : kbs) {
      if (op.Change(a, b) != op.Change(b, a)) {
        return PropertyCounterexample{
            "commutative",
            "a=" + a.ToString() + " b=" + b.ToString()};
      }
    }
  }
  return std::nullopt;
}

std::optional<PropertyCounterexample> CheckAssociative(
    const TheoryChangeOperator& op, int num_terms) {
  std::vector<ModelSet> kbs = AllKbs(num_terms);
  for (const ModelSet& a : kbs) {
    for (const ModelSet& b : kbs) {
      ModelSet ab = op.Change(a, b);
      for (const ModelSet& c : kbs) {
        if (op.Change(ab, c) != op.Change(a, op.Change(b, c))) {
          return PropertyCounterexample{
              "associative", "a=" + a.ToString() + " b=" + b.ToString() +
                                 " c=" + c.ToString()};
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<PropertyCounterexample> CheckSuccess(
    const TheoryChangeOperator& op, int num_terms) {
  std::vector<ModelSet> kbs = AllKbs(num_terms);
  for (const ModelSet& psi : kbs) {
    for (const ModelSet& mu : kbs) {
      if (!op.Change(psi, mu).IsSubsetOf(mu)) {
        return PropertyCounterexample{
            "success", "psi=" + psi.ToString() + " mu=" + mu.ToString()};
      }
    }
  }
  return std::nullopt;
}

std::optional<PropertyCounterexample> CheckVacuity(
    const TheoryChangeOperator& op, int num_terms) {
  std::vector<ModelSet> kbs = AllKbs(num_terms);
  for (const ModelSet& psi : kbs) {
    for (const ModelSet& mu : kbs) {
      ModelSet both = psi.Intersect(mu);
      if (both.empty()) continue;
      if (op.Change(psi, mu) != both) {
        return PropertyCounterexample{
            "vacuity", "psi=" + psi.ToString() + " mu=" + mu.ToString()};
      }
    }
  }
  return std::nullopt;
}

}  // namespace arbiter
