#include "logic/vocabulary.h"

#include "util/logging.h"

namespace arbiter {

Result<Vocabulary> Vocabulary::FromNames(
    const std::vector<std::string>& names) {
  Vocabulary v;
  for (const std::string& name : names) {
    Result<int> r = v.AddTerm(name);
    if (!r.ok()) return r.status();
  }
  return v;
}

Vocabulary Vocabulary::Synthetic(int n) {
  ARBITER_CHECK(n >= 0 && n <= kMaxVocabularyTerms);
  Vocabulary v;
  for (int i = 0; i < n; ++i) {
    v.AddTerm("p" + std::to_string(i)).ValueOrDie();
  }
  return v;
}

Result<int> Vocabulary::AddTerm(const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument("empty term name");
  }
  if (index_.count(name) != 0) {
    return Status::InvalidArgument("duplicate term name: " + name);
  }
  if (size() >= kMaxVocabularyTerms) {
    return Status::CapacityExceeded("vocabulary limited to " +
                                    std::to_string(kMaxVocabularyTerms) +
                                    " terms");
  }
  int idx = size();
  names_.push_back(name);
  index_.emplace(name, idx);
  return idx;
}

Result<int> Vocabulary::GetOrAddTerm(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  return AddTerm(name);
}

Result<int> Vocabulary::Lookup(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("unknown term: " + name);
  }
  return it->second;
}

bool Vocabulary::Contains(const std::string& name) const {
  return index_.count(name) != 0;
}

const std::string& Vocabulary::Name(int i) const {
  ARBITER_CHECK(i >= 0 && i < size());
  return names_[i];
}

uint64_t Vocabulary::NumInterpretations() const {
  ARBITER_CHECK_MSG(size() <= kMaxEnumTerms,
                    "vocabulary too large to enumerate");
  return 1ULL << size();
}

}  // namespace arbiter
