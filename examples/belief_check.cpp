// belief_check: run a belief script (see src/store/script.h) from a
// file or stdin and exit nonzero if any assertion fails — belief
// regression testing for CI.
//
//   ./build/examples/belief_check examples/scripts/jury.belief
//   printf 'define kb := a\nassert kb entails a\n' | ./build/examples/belief_check
//
// Script language:
//   define <base> := <formula>
//   change <base> by <operator> with <formula>
//   undo <base>
//   assert <base> entails | consistent-with | equivalent-to <formula>
//   if <base> entails <formula> then <statement>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "lint/lint.h"
#include "store/script.h"

int main(int argc, char** argv) {
  std::string text;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  } else {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  }

  // Lint findings ride along on each step of the report, so a CI log
  // shows degenerate statements (vacuous changes, unreachable guards)
  // next to the assertion that exercised them.
  arbiter::BeliefStore store;
  arbiter::Result<arbiter::ScriptReport> report =
      arbiter::lint::RunScriptTextLinted(text, &store);
  if (!report.ok()) {
    std::fprintf(stderr, "script error: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }
  std::printf("%s", report->ToString().c_str());
  if (!report->AllPassed()) return 1;
  std::printf("\nfinal store state:\n%s", store.Dump().c_str());
  return 0;
}
