#ifndef ARBITER_UTIL_PARALLEL_H_
#define ARBITER_UTIL_PARALLEL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/sync.h"

/// \file parallel.h
/// A small, dependency-free execution layer for the enumeration-heavy
/// subsystems (model fitting, merging, postulate sweeps).
///
/// Design constraints, in order:
///
///  1. **Determinism.** Work is always partitioned into the same
///     grain-sized chunks regardless of thread count; callers keep
///     per-chunk state and fold chunk results in chunk order.  Every
///     algorithm built on top (MinByIntBounded, the checkers) is
///     bit-identical to its serial execution at any thread count.
///  2. **Zero overhead for tiny inputs.**  A range that fits in one
///     chunk — or a pool configured with one thread — runs inline on
///     the calling thread with no allocation, locking, or wakeups, so
///     unit-test-sized problems keep exact seed-code performance.
///  3. **Nested-safe.**  The calling thread always participates in its
///     own job (work claiming is dynamic over the fixed chunk set), so
///     a worker that issues a nested ParallelFor can never deadlock:
///     in the worst case it executes all of its own chunks itself.
///
/// Thread count: `ARBITER_THREADS` env var if set (clamped to
/// [1, 512]), else `std::thread::hardware_concurrency()`.  Tests and
/// benchmarks may override at runtime with `SetNumThreads`.

namespace arbiter {

/// A lazily-started singleton pool of `num_threads() - 1` worker
/// threads (the calling thread is the remaining lane).
class ThreadPool {
 public:
  /// The process-wide pool.  First call starts the workers.
  static ThreadPool& Instance();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured parallelism (worker threads + the calling thread).
  int num_threads() const { return num_threads_; }

  /// Reconfigures the pool to `n` lanes; `n <= 0` restores the default
  /// (ARBITER_THREADS env var, else hardware concurrency).  Must not
  /// be called while parallel work is in flight.  For tests/benchmarks.
  void SetNumThreads(int n);

  /// Runs `fn(chunk)` once for every chunk in [0, num_chunks), possibly
  /// concurrently, and blocks until all chunks completed.  The calling
  /// thread participates.  `fn` must not throw.
  void RunChunks(uint64_t num_chunks, const std::function<void(uint64_t)>& fn);

 private:
  /// One parallel region: a fixed chunk set claimed dynamically.
  /// `num_chunks` and `fn` are written once before the job is
  /// published to the queue and only read afterwards, so they need no
  /// guard; `mu`/`cv` exist purely for the completion handshake (the
  /// waiter re-checks the atomic `done` under `mu`).
  struct Job {
    std::atomic<uint64_t> next{0};
    std::atomic<uint64_t> done{0};
    uint64_t num_chunks = 0;
    const std::function<void(uint64_t)>* fn = nullptr;
    Mutex mu{LockRank::kPoolJob, "ThreadPool::Job::mu"};
    CondVar cv;
  };

  ThreadPool();
  void StartWorkers();
  void StopWorkers();
  void WorkerLoop();
  /// Claims and executes chunks of `job` until none remain.
  void HelpWith(const std::shared_ptr<Job>& job);

  /// Mutated only by SetNumThreads with all workers joined; read by
  /// RunChunks on the (single) configuring thread's schedule.
  int num_threads_ = 1;
  /// Owned by the configuring thread (ctor/SetNumThreads/dtor); the
  /// workers never touch the vector itself.
  std::vector<std::thread> workers_;
  Mutex queue_mu_{LockRank::kPoolQueue, "ThreadPool::queue_mu_"};
  CondVar queue_cv_;
  /// Jobs with unclaimed chunks.
  std::vector<std::shared_ptr<Job>> queue_ GUARDED_BY(queue_mu_);
  bool shutdown_ GUARDED_BY(queue_mu_) = false;
};

/// Chunked parallel-for over [begin, end): partitions the range into
/// grain-sized chunks (the last may be short) and invokes
/// `fn(chunk_begin, chunk_end)` exactly once per chunk.  The chunk
/// decomposition depends only on (begin, end, grain) — never on the
/// thread count — so `(chunk_begin - begin) / grain` is a stable chunk
/// index for per-chunk output slots.  `fn` must be thread-safe and must
/// not throw.  Runs inline when the range fits in one chunk or the
/// pool has a single thread.
void ParallelFor(uint64_t begin, uint64_t end, uint64_t grain,
                 const std::function<void(uint64_t, uint64_t)>& fn);

/// Number of chunks ParallelFor would use (for sizing per-chunk slots).
inline uint64_t ParallelForNumChunks(uint64_t begin, uint64_t end,
                                     uint64_t grain) {
  if (begin >= end) return 0;
  if (grain == 0) grain = 1;
  return (end - begin + grain - 1) / grain;
}

/// Deterministic chunked reduction: maps each grain-sized chunk of
/// [begin, end) to a T via `map(chunk_begin, chunk_end)`, then folds
/// the chunk values **in chunk order** with `combine(acc, value)`.
/// The fold order is independent of the thread count, so non-
/// commutative / non-associative-in-floating-point combines are still
/// reproducible.  `map` must be thread-safe.
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(uint64_t begin, uint64_t end, uint64_t grain, T identity,
                 const MapFn& map, const CombineFn& combine) {
  const uint64_t num_chunks = ParallelForNumChunks(begin, end, grain);
  if (num_chunks == 0) return identity;
  if (grain == 0) grain = 1;
  std::vector<T> parts(num_chunks, identity);
  ParallelFor(begin, end, grain, [&](uint64_t lo, uint64_t hi) {
    parts[(lo - begin) / grain] = map(lo, hi);
  });
  T acc = identity;
  for (const T& part : parts) acc = combine(acc, part);
  return acc;
}

}  // namespace arbiter

#endif  // ARBITER_UTIL_PARALLEL_H_
