#include "postulates/commutative_checker.h"

#include "util/logging.h"
#include "util/parallel.h"

namespace arbiter {

std::string CommutativePostulateName(CommutativePostulate p) {
  switch (p) {
    case CommutativePostulate::kC1: return "C1";
    case CommutativePostulate::kC2: return "C2";
    case CommutativePostulate::kC3: return "C3";
    case CommutativePostulate::kC4: return "C4";
    case CommutativePostulate::kC5: return "C5";
    case CommutativePostulate::kC6: return "C6";
    case CommutativePostulate::kC7: return "C7";
    case CommutativePostulate::kC8: return "C8";
  }
  return "?";
}

std::string CommutativePostulateStatement(CommutativePostulate p) {
  switch (p) {
    case CommutativePostulate::kC1:
      return "psi <> phi is equivalent to phi <> psi";
    case CommutativePostulate::kC2:
      return "psi & phi implies psi <> phi";
    case CommutativePostulate::kC3:
      return "if psi & phi is satisfiable then psi <> phi implies "
             "psi & phi";
    case CommutativePostulate::kC4:
      return "psi <> phi is unsatisfiable iff psi and phi both are";
    case CommutativePostulate::kC5:
      return "psi <> phi implies psi | phi";
    case CommutativePostulate::kC6:
      return "equivalent inputs give equivalent outputs";
    case CommutativePostulate::kC7:
      return "psi <> (phi1 | phi2) is psi <> phi1, or psi <> phi2, or "
             "their disjunction";
    case CommutativePostulate::kC8:
      return "for satisfiable psi, phi: (psi <> phi) & psi is "
             "satisfiable iff (psi <> phi) & phi is satisfiable";
  }
  return "?";
}

std::vector<CommutativePostulate> AllCommutativePostulates() {
  return {CommutativePostulate::kC1, CommutativePostulate::kC2,
          CommutativePostulate::kC3, CommutativePostulate::kC4,
          CommutativePostulate::kC5, CommutativePostulate::kC6,
          CommutativePostulate::kC7, CommutativePostulate::kC8};
}

namespace {

std::string CodeStr(SetCode code, int num_terms) {
  if (code == kUnusedCode) return "-";
  std::string out = "{";
  bool first = true;
  for (uint64_t m = 0; m < (1ULL << num_terms); ++m) {
    if ((code >> m) & 1) {
      if (!first) out += ",";
      out += std::to_string(m);
      first = false;
    }
  }
  return out + "}";
}

}  // namespace

std::string CommutativeCounterexample::Describe() const {
  std::string out = CommutativePostulateName(postulate) + " violated:";
  out += " psi=" + CodeStr(psi, num_terms);
  out += " phi1=" + CodeStr(phi1, num_terms);
  if (phi2 != kUnusedCode) out += " phi2=" + CodeStr(phi2, num_terms);
  out += "  [" + CommutativePostulateStatement(postulate) + "]";
  return out;
}

CommutativeChecker::CommutativeChecker(
    std::shared_ptr<const TheoryChangeOperator> op, int num_terms)
    : op_(std::move(op)), num_terms_(num_terms) {
  ARBITER_CHECK(op_ != nullptr);
  ARBITER_CHECK(num_terms >= 1 && num_terms <= 3);
  space_ = 1ULL << num_terms_;
  num_codes_ = 1ULL << space_;
  const uint64_t slots = num_codes_ * num_codes_;
  cache_ = std::make_unique<std::atomic<SetCode>[]>(slots);
  for (uint64_t i = 0; i < slots; ++i) {
    cache_[i].store(kUnusedCode, std::memory_order_relaxed);
  }
}

ModelSet CommutativeChecker::CodeToModelSet(SetCode code) const {
  std::vector<uint64_t> masks;
  for (uint64_t m = 0; m < space_; ++m) {
    if ((code >> m) & 1) masks.push_back(m);
  }
  return ModelSet::FromMasks(std::move(masks), num_terms_);
}

SetCode CommutativeChecker::Change(SetCode psi, SetCode phi) {
  std::atomic<SetCode>& slot = cache_[psi * num_codes_ + phi];
  SetCode cached = slot.load(std::memory_order_relaxed);
  if (cached != kUnusedCode) return cached;
  ModelSet result = op_->Change(CodeToModelSet(psi), CodeToModelSet(phi));
  SetCode out = 0;
  for (uint64_t m : result) out |= SetCode{1} << m;
  slot.store(out, std::memory_order_relaxed);
  return out;
}

std::optional<CommutativeCounterexample> CommutativeChecker::CheckExhaustive(
    CommutativePostulate p) {
  auto implies = [](SetCode a, SetCode b) { return (a & ~b) == 0; };
  auto cex = [&](SetCode psi, SetCode phi1, SetCode phi2) {
    return CommutativeCounterexample{p, num_terms_, psi, phi1, phi2};
  };
  const uint64_t n = num_codes_;
  // One slice = all tuples for one psi, scanned in serial order.
  auto scan_slice =
      [&](SetCode psi) -> std::optional<CommutativeCounterexample> {
    for (SetCode phi = 0; phi < n; ++phi) {
      switch (p) {
        case CommutativePostulate::kC1:
          if (Change(psi, phi) != Change(phi, psi)) {
            return cex(psi, phi, kUnusedCode);
          }
          break;
        case CommutativePostulate::kC2:
          if (!implies(psi & phi, Change(psi, phi))) {
            return cex(psi, phi, kUnusedCode);
          }
          break;
        case CommutativePostulate::kC3:
          if ((psi & phi) != 0 && !implies(Change(psi, phi), psi & phi)) {
            return cex(psi, phi, kUnusedCode);
          }
          break;
        case CommutativePostulate::kC4:
          if ((Change(psi, phi) == 0) != (psi == 0 && phi == 0)) {
            return cex(psi, phi, kUnusedCode);
          }
          break;
        case CommutativePostulate::kC5:
          if (!implies(Change(psi, phi), psi | phi)) {
            return cex(psi, phi, kUnusedCode);
          }
          break;
        case CommutativePostulate::kC6: {
          // Semantic operators: verify determinism.
          ModelSet a =
              op_->Change(CodeToModelSet(psi), CodeToModelSet(phi));
          ModelSet b =
              op_->Change(CodeToModelSet(psi), CodeToModelSet(phi));
          if (a != b) return cex(psi, phi, kUnusedCode);
          break;
        }
        case CommutativePostulate::kC7:
          for (SetCode phi2 = 0; phi2 < n; ++phi2) {
            SetCode whole = Change(psi, phi | phi2);
            SetCode r1 = Change(psi, phi);
            SetCode r2 = Change(psi, phi2);
            if (whole != r1 && whole != r2 && whole != (r1 | r2)) {
              return cex(psi, phi, phi2);
            }
          }
          break;
        case CommutativePostulate::kC8: {
          if (psi == 0 || phi == 0) break;
          SetCode r = Change(psi, phi);
          if (((r & psi) != 0) != ((r & phi) != 0)) {
            return cex(psi, phi, kUnusedCode);
          }
          break;
        }
      }
    }
    return std::nullopt;
  };
  // Parallel sweep over psi slices with deterministic first-in-order
  // merging (same scheme as PostulateChecker::CheckExhaustive).
  const uint64_t grain = n >= 256 ? 4 : n;
  std::vector<std::optional<CommutativeCounterexample>> found(n);
  std::atomic<uint64_t> first_hit{n};
  ParallelFor(0, n, grain, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t psi = lo; psi < hi; ++psi) {
      if (first_hit.load(std::memory_order_relaxed) < psi) return;
      std::optional<CommutativeCounterexample> hit = scan_slice(psi);
      if (hit.has_value()) {
        found[psi] = std::move(hit);
        uint64_t cur = first_hit.load(std::memory_order_relaxed);
        while (psi < cur && !first_hit.compare_exchange_weak(
                                cur, psi, std::memory_order_relaxed)) {
        }
        return;
      }
    }
  });
  for (uint64_t psi = 0; psi < n; ++psi) {
    if (found[psi].has_value()) return found[psi];
  }
  return std::nullopt;
}

std::vector<std::string> CommutativeChecker::FailingPostulates() {
  std::vector<std::string> out;
  for (CommutativePostulate p : AllCommutativePostulates()) {
    if (CheckExhaustive(p).has_value()) {
      out.push_back(CommutativePostulateName(p));
    }
  }
  return out;
}

}  // namespace arbiter
