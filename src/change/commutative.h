#ifndef ARBITER_CHANGE_COMMUTATIVE_H_
#define ARBITER_CHANGE_COMMUTATIVE_H_

#include <memory>

#include "change/operator.h"

/// \file commutative.h
/// Commutative (two-sided) arbitration in the style the literature
/// developed after this paper — notably Liberatore & Schaerf's
/// "Arbitration (or how to merge knowledge bases)".  Where Revesz's
/// Δ fits the whole interpretation space, the two-sided school keeps
/// the result inside Mod(ψ) ∪ Mod(φ): the arbiter must side with at
/// least one party on every point.
///
/// The canonical construction is revision-based:
///
///     ψ ◇ φ  =  (ψ ∘ φ) ∨ (φ ∘ ψ)
///
/// for a revision operator ∘.  With Dalal's ∘ this selects, from each
/// side, the models closest to the other side — a symmetric compromise
/// that is commutative by construction and collapses to ψ ∧ φ when the
/// parties are compatible.

namespace arbiter {

/// Two-sided arbitration (ψ ∘ φ) ∨ (φ ∘ ψ) over a pluggable revision.
class RevisionBasedArbitration : public TheoryChangeOperator {
 public:
  /// Takes shared ownership of the underlying revision operator.
  explicit RevisionBasedArbitration(
      std::shared_ptr<const TheoryChangeOperator> revision);

  std::string name() const override {
    return "two-sided(" + revision_->name() + ")";
  }
  OperatorFamily family() const override {
    return OperatorFamily::kArbitration;
  }
  ModelSet Change(const ModelSet& psi, const ModelSet& phi) const override;

 private:
  std::shared_ptr<const TheoryChangeOperator> revision_;
};

/// Convenience: two-sided arbitration over Dalal revision.
RevisionBasedArbitration MakeTwoSidedDalalArbitration();

}  // namespace arbiter

#endif  // ARBITER_CHANGE_COMMUTATIVE_H_
