#ifndef ARBITER_SERVER_SERVER_H_
#define ARBITER_SERVER_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "change/result_cache.h"
#include "store/belief_store.h"
#include "store/script.h"
#include "util/sync.h"

/// \file server.h
/// BeliefServer: many named BeliefStores behind a batch API, built for
/// concurrent sessions.
///
/// ## Epoch consistency model
///
/// Each hosted store is published as an immutable snapshot — a
/// `shared_ptr<const BeliefStore>` tagged with a monotonically
/// increasing epoch.  Read-only batches grab the current snapshot
/// pointer (a lock held only for the copy of one pointer) and run
/// every query against that frozen state; concurrent writers never
/// affect a read in flight.  Write batches serialize per store on a
/// writer mutex, deep-copy the current snapshot, apply their
/// statements to the copy, and — only if something actually changed —
/// publish it as epoch+1.  A failed statement leaves the copy exactly
/// as it was (the BeliefStore strong error guarantee), so a batch that
/// fails halfway still publishes a meaningful state; a batch in which
/// nothing committed publishes nothing.
///
/// Every BatchResult reports the epoch it observed, which makes the
/// model testable: replaying the same statements serially against the
/// same epoch's snapshot must reproduce the same outcomes bit for bit
/// (src/server/differential.h does exactly that under ThreadSanitizer).
///
/// ## Batching
///
/// A batch is N statements in the `.belief` statement language plus
/// server-only query forms (see ParseServerStatement).  The whole
/// batch is parsed up front, classified read-only vs. writing, and
/// runs against one snapshot/copy — one parse pass and one store setup
/// amortized over N statements, with one outcome per statement in
/// order.
///
/// ## Result cache
///
/// All hosted stores share one OperatorResultCache (canonical-form
/// keys, LRU).  Repeated traffic — the same revision against the same
/// base, modulo conjunct order / duplicate clauses / vocabulary
/// permutation — is served from the cache instead of the solver.

namespace arbiter::server {

/// Outcome of one statement in a batch.
struct StatementOutcome {
  enum class Kind {
    kOk,      ///< executed; no value to report
    kValue,   ///< executed; `text` is the value (query results, stats)
    kFailed,  ///< executed; an assertion did not hold (`text` explains)
    kError,   ///< rejected; `code`/`text` carry the structured error
  };
  Kind kind = Kind::kOk;
  std::string text;
  StatusCode code = StatusCode::kOk;
};

/// Renders an outcome as its protocol line:
/// `ok` | `val <text>` | `fail <text>` | `err <code> <text>`.
std::string RenderOutcome(const StatementOutcome& outcome);

/// Result of one executed batch.
struct BatchResult {
  /// Epoch of the snapshot the batch observed (writers: the epoch the
  /// copy was taken from; a commit publishes epoch+1).
  uint64_t epoch = 0;
  /// True iff the batch published a new epoch.
  bool committed = false;
  std::vector<StatementOutcome> outcomes;  ///< one per statement, in order
};

/// One parsed server statement: either a `.belief` script statement or
/// a server-only read form.
struct ServerStatement {
  enum class Kind {
    kScript,           ///< payload in `script`
    kQueryEntails,     ///< query <base> entails <formula>
    kQueryConsistent,  ///< query <base> consistent-with <formula>
    kQueryEquivalent,  ///< query <base> equivalent-to <formula>
    kQueryModels,      ///< query <base> models
    kQueryDist,        ///< query <base> dist <op> <formula>
    kStats,            ///< stats — cache counters
    kNoop,             ///< blank line or comment
  };
  Kind kind = Kind::kNoop;
  ScriptStatement script;  ///< kScript only
  std::string base;
  std::string op_name;     ///< kQueryDist only
  std::string formula;
};

/// Parses one statement line (server query forms first, then the
/// `.belief` script grammar).
Result<ServerStatement> ParseServerStatement(const std::string& line);

/// True iff executing the statement can change store state (including
/// conditionals whose guarded statement writes).
bool StatementMutates(const ServerStatement& statement);

class BeliefServer {
 public:
  struct Options {
    size_t cache_capacity = 1024;
  };

  BeliefServer() : BeliefServer(Options()) {}
  explicit BeliefServer(Options options);

  /// Executes `statements` against the named store (created empty on
  /// first use).  Thread-safe: read-only batches run lock-free against
  /// a snapshot; writing batches serialize per store.
  BatchResult ExecuteBatch(const std::string& store_name,
                           const std::vector<std::string>& statements);

  /// Shared operator-result cache counters.
  OperatorResultCache::Stats CacheStats() const;

  /// Names of all hosted stores, sorted.
  std::vector<std::string> StoreNames() const;

  /// Save() of the named store's current snapshot.
  Result<std::string> SaveStore(const std::string& store_name) const;

  /// Current epoch of the named store (0 if never used).
  uint64_t StoreEpoch(const std::string& store_name) const;

 private:
  /// One hosted store.  The capability split is the epoch model
  /// itself: `writer_mu` is the *right to produce the next epoch*
  /// (held across the whole copy-apply-publish cycle, guards no field
  /// directly), while `ptr_mu` guards the published snapshot/epoch
  /// pair and is only ever held for a pointer copy.  A writer
  /// therefore acquires writer_mu before ptr_mu — the
  /// ACQUIRED_BEFORE edge below and LockRank (kStoreWriter <
  /// kStorePtr) both pin that order.
  struct Hosted {
    /// Serializes writing batches.
    Mutex writer_mu ACQUIRED_BEFORE(ptr_mu){LockRank::kStoreWriter,
                                            "Hosted::writer_mu"};
    /// Guards the published snapshot/epoch pair.
    mutable Mutex ptr_mu{LockRank::kStorePtr, "Hosted::ptr_mu"};
    std::shared_ptr<const BeliefStore> snapshot GUARDED_BY(ptr_mu);
    uint64_t epoch GUARDED_BY(ptr_mu) = 0;
  };

  /// Returned Hosted pointers stay valid for the server's lifetime:
  /// stores_ maps to unique_ptr slots and entries are never erased, so
  /// callers may use a Hosted (through its own mutexes) after
  /// stores_mu_ is released.
  Hosted* GetOrCreate(const std::string& name);
  const Hosted* FindHosted(const std::string& name) const;

  mutable Mutex stores_mu_{LockRank::kStores, "BeliefServer::stores_mu_"};
  std::map<std::string, std::unique_ptr<Hosted>> stores_
      GUARDED_BY(stores_mu_);
  /// Set in the constructor, immutable afterwards; the cache itself is
  /// internally synchronized (its own kResultCache-ranked mutex).
  std::shared_ptr<OperatorResultCache> cache_;
};

/// Executes already-parsed statement lines against a store.  This is
/// the single statement engine: the live server and the serial replay
/// used by the differential test both call it, so their outcomes can
/// be compared bit for bit.
///
/// `write` may be null for read-only execution (mutating statements
/// then report kUnsupported); `server` supplies `stats` counters and
/// may be null (then `stats` reports kUnsupported).  `*mutated` is set
/// if any statement changed `*write`.
std::vector<StatementOutcome> ExecuteStatements(
    const BeliefStore& snapshot, BeliefStore* write,
    const std::vector<std::string>& lines, const BeliefServer* server,
    bool* mutated);

/// Serial-replay helper: copies `snapshot`, runs `lines` against the
/// copy with the same engine as ExecuteBatch, and (optionally) returns
/// the resulting state.  `committed` mirrors the live server's rule:
/// true iff some statement mutated the copy.
BatchResult ReplayBatch(const BeliefStore& snapshot,
                        const std::vector<std::string>& lines,
                        BeliefStore* final_state = nullptr);

}  // namespace arbiter::server

#endif  // ARBITER_SERVER_SERVER_H_
