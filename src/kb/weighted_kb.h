#ifndef ARBITER_KB_WEIGHTED_KB_H_
#define ARBITER_KB_WEIGHTED_KB_H_

#include <string>
#include <vector>

#include "model/distance_semantics.h"
#include "model/model_set.h"
#include "model/preorder.h"

/// \file weighted_kb.h
/// Weighted knowledge bases (paper, Section 4): functions
/// ψ̃ : M → ℝ≥0 assigning a nonnegative weight to every interpretation.
///
/// Paper semantics:
///   Mod(ψ̃ ∨ φ̃)(I) = ψ̃(I) + φ̃(I)      (⊔, pointwise sum)
///   Mod(ψ̃ ∧ φ̃)(I) = min(ψ̃(I), φ̃(I))  (⊓, pointwise min)
///   ψ̃ unsatisfiable  iff all weights are 0
///   ψ̃ → φ̃           iff ψ̃(I) <= φ̃(I) for every I
///
/// A plain knowledge base ψ embeds as the 0/1 indicator of Mod(ψ).
/// Weights are stored densely over all 2^n interpretations, so
/// num_terms <= kMaxEnumTerms.

namespace arbiter {

class WeightedKnowledgeBase {
 public:
  /// The everywhere-zero (unsatisfiable) base over n terms.
  explicit WeightedKnowledgeBase(int num_terms);

  /// 0/1 embedding of a plain model set (paper, Section 4 opening).
  static WeightedKnowledgeBase FromModelSet(const ModelSet& models);

  /// 0/1 embedding of a formula.
  static WeightedKnowledgeBase FromFormula(const Formula& f, int num_terms);

  /// The paper's M̃: weight `weight` on every interpretation.
  static WeightedKnowledgeBase Uniform(int num_terms, double weight = 1.0);

  int num_terms() const { return num_terms_; }
  uint64_t space_size() const { return uint64_t{1} << num_terms_; }

  double Weight(uint64_t bits) const {
    ARBITER_DCHECK(bits < space_size());
    return weights_[bits];
  }

  /// Sets the weight of one interpretation.  Must be >= 0.
  void SetWeight(uint64_t bits, double weight);

  /// ⊔: pointwise sum (the weighted ∨).
  WeightedKnowledgeBase Or(const WeightedKnowledgeBase& other) const;

  /// ⊓: pointwise min (the weighted ∧).
  WeightedKnowledgeBase And(const WeightedKnowledgeBase& other) const;

  /// Satisfiable iff some weight is positive.
  bool IsSatisfiable() const;

  /// ψ̃ → φ̃ : pointwise <=.
  bool Implies(const WeightedKnowledgeBase& other) const;

  /// ψ̃ ↔ φ̃ : pointwise ==.
  bool EquivalentTo(const WeightedKnowledgeBase& other) const;

  /// Support {I : ψ̃(I) > 0} — the paper's S in the weighted Min.
  ModelSet Support() const;

  /// wdist(ψ̃, I) = Σ_J dist(I, J) · ψ̃(J)  (paper, Section 4).
  double WeightedDistTo(uint64_t bits) const;

  /// wdist under a non-Dalal metric: Σ_J metric-dist(I, J) · ψ̃(J),
  /// with the per-atom weights from `semantics` (its aggregator and
  /// model_weight are ignored — this base's weights play that role).
  double WeightedDistTo(uint64_t bits,
                        const DistanceSemantics& semantics) const;

  /// The pre-order ≤ψ̃ ranked by wdist — the paper's concrete weighted
  /// loyal assignment.  Requires satisfiability.
  TotalPreorder WdistPreorder() const;

  /// WdistPreorder under a non-Dalal metric.
  TotalPreorder WdistPreorder(const DistanceSemantics& semantics) const;

  /// The paper's weighted Min: keeps this base's weights on the
  /// ≤-minimal interpretations of its support and zeroes the rest.
  WeightedKnowledgeBase MinimalBy(const TotalPreorder& order) const;

  /// Lists "bits:weight" pairs for the support, for diagnostics.
  std::string ToString(const Vocabulary& vocab) const;

  bool operator==(const WeightedKnowledgeBase& o) const {
    return num_terms_ == o.num_terms_ && weights_ == o.weights_;
  }

 private:
  int num_terms_;
  std::vector<double> weights_;  // dense, size 2^num_terms
};

}  // namespace arbiter

#endif  // ARBITER_KB_WEIGHTED_KB_H_
