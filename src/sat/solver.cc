#include "sat/solver.h"

#include <algorithm>
#include <cmath>

namespace arbiter::sat {

Solver::Solver() = default;
Solver::~Solver() = default;

Var Solver::NewVar() {
  Var v = NumVars();
  watches_.emplace_back();
  watches_.emplace_back();
  bin_watches_.emplace_back();
  bin_watches_.emplace_back();
  assigns_.push_back(LBool::kUndef);
  polarity_.push_back(false);
  reason_.push_back(kClauseRefUndef);
  level_.push_back(0);
  activity_.push_back(0.0);
  heap_index_.push_back(-1);
  seen_.push_back(false);
  HeapInsert(v);
  return v;
}

// ---------------------------------------------------------------------------
// Clause management
// ---------------------------------------------------------------------------

ClauseRef Solver::AllocClause(const std::vector<Lit>& lits, bool learnt) {
  ClauseRef c = arena_.Alloc(lits, learnt);
  if (learnt) {
    learnts_.push_back(c);
    ++num_learnt_clauses_;
  } else {
    clauses_.push_back(c);
    ++num_problem_clauses_;
  }
  return c;
}

void Solver::AttachClause(ClauseRef c) {
  ARBITER_DCHECK(arena_.Size(c) >= 2);
  const Lit c0 = arena_.LitAt(c, 0);
  const Lit c1 = arena_.LitAt(c, 1);
  if (arena_.Size(c) == 2) {
    bin_watches_[(~c0).code()].push_back(BinWatcher{c1, c});
    bin_watches_[(~c1).code()].push_back(BinWatcher{c0, c});
  } else {
    watches_[(~c0).code()].push_back(Watcher{c, c1});
    watches_[(~c1).code()].push_back(Watcher{c, c0});
  }
}

void Solver::DetachClause(ClauseRef c) {
  ARBITER_DCHECK(arena_.Size(c) >= 2);
  const Lit c0 = arena_.LitAt(c, 0);
  const Lit c1 = arena_.LitAt(c, 1);
  if (arena_.Size(c) == 2) {
    for (Lit w : {c0, c1}) {
      std::vector<BinWatcher>& ws = bin_watches_[(~w).code()];
      for (size_t i = 0; i < ws.size(); ++i) {
        if (ws[i].cref == c) {
          ws[i] = ws.back();
          ws.pop_back();
          break;
        }
      }
    }
  } else {
    for (Lit w : {c0, c1}) {
      std::vector<Watcher>& ws = watches_[(~w).code()];
      for (size_t i = 0; i < ws.size(); ++i) {
        if (ws[i].cref == c) {
          ws[i] = ws.back();
          ws.pop_back();
          break;
        }
      }
    }
  }
}

void Solver::RemoveClause(ClauseRef c) {
  if (proof_ != nullptr) {
    std::vector<Lit> lits;
    const int size = arena_.Size(c);
    lits.reserve(size);
    for (int i = 0; i < size; ++i) lits.push_back(arena_.LitAt(c, i));
    proof_->OnDelete(lits);
  }
  DetachClause(c);
  if (arena_.Learnt(c)) {
    --num_learnt_clauses_;
  } else {
    --num_problem_clauses_;
  }
  // The clause ref stays in clauses_/learnts_ until the next list
  // compaction (ReduceDB / SimplifyDb / GC); the header bit makes it
  // skippable.
  arena_.MarkDeleted(c);
}

bool Solver::Locked(ClauseRef c) const {
  // Valid for clauses in the main watch tier only: propagation keeps
  // the implied literal of a reason clause at position 0.  Binary
  // reasons can sit at either position, but binaries are never
  // candidates for removal while locked (ReduceDB keeps them, and
  // SimplifyDb clears root reasons first).
  const Lit c0 = arena_.LitAt(c, 0);
  return reason_[c0.var()] == c && Value(c0) == LBool::kTrue;
}

bool Solver::Satisfied(ClauseRef c) const {
  const int size = arena_.Size(c);
  for (int i = 0; i < size; ++i) {
    if (Value(arena_.LitAt(c, i)) == LBool::kTrue) return true;
  }
  return false;
}

bool Solver::AddClause(std::vector<Lit> lits) {
  ARBITER_CHECK(DecisionLevel() == 0);
  if (!ok_) return false;
  // Sort, deduplicate, drop false literals, detect tautologies and
  // already-satisfied clauses.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> out;
  Lit prev;
  for (Lit l : lits) {
    ARBITER_CHECK_MSG(l.var() >= 0 && l.var() < NumVars(),
                      "literal over unknown variable");
    if (Value(l) == LBool::kTrue || (prev.defined() && l == ~prev)) {
      return true;  // clause is already true or tautological
    }
    if (Value(l) == LBool::kFalse || l == prev) continue;
    out.push_back(l);
    prev = l;
  }
  if (out.empty()) {
    if (proof_ != nullptr) proof_->OnAdd(out);
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    UncheckedEnqueue(out[0], kClauseRefUndef);  // logs the root unit
    ok_ = (Propagate() == kClauseRefUndef);
    if (!ok_ && proof_ != nullptr) proof_->OnAdd({});
    return ok_;
  }
  // A shrunk clause (dropped false/duplicate literals) is a derived
  // form: the checker needs it explicitly, since the original may
  // never re-simplify the same way.
  if (proof_ != nullptr && out.size() != lits.size()) proof_->OnAdd(out);
  ClauseRef c = AllocClause(out, /*learnt=*/false);
  AttachClause(c);
  return true;
}

// ---------------------------------------------------------------------------
// Trail / propagation
// ---------------------------------------------------------------------------

void Solver::UncheckedEnqueue(Lit l, ClauseRef reason) {
  ARBITER_DCHECK(Value(l) == LBool::kUndef);
  // Every decision-level-0 assignment is a permanent fact; logging it
  // as a unit addition keeps the checker's database self-sufficient
  // even after the fact's antecedent clauses are deleted (ReduceDB,
  // root-satisfied removal).  Decisions and assumptions are enqueued
  // above level 0 and are never logged.
  if (proof_ != nullptr && DecisionLevel() == 0) proof_->OnAdd({l});
  assigns_[l.var()] = static_cast<LBool>(1 ^ static_cast<int>(l.negated()));
  reason_[l.var()] = reason;
  level_[l.var()] = DecisionLevel();
  trail_.push_back(l);
}

ClauseRef Solver::Propagate() {
  ClauseRef conflict = kClauseRefUndef;
  while (qhead_ < static_cast<int>(trail_.size())) {
    const Lit p = trail_[qhead_++];  // p is now true
    // Binary tier first: no arena access, no watch moves.  Pointers are
    // hoisted because UncheckedEnqueue only touches other vectors.
    {
      const std::vector<BinWatcher>& bws = bin_watches_[p.code()];
      const BinWatcher* bw = bws.data();
      const BinWatcher* const bend = bw + bws.size();
      for (; bw != bend; ++bw) {
        const int v = ValueCode(bw->other);
        if (v == 0) {  // other watch false: conflict
          conflict = bw->cref;
          qhead_ = static_cast<int>(trail_.size());
          break;
        }
        if (v >= 2) {  // unassigned: unit
          UncheckedEnqueue(bw->other, bw->cref);
          ++stats_.propagations;
        }
      }
      if (conflict != kClauseRefUndef) break;
    }
    // Watcher moves only ever push onto OTHER literals' lists (the
    // replacement watch c[1] is non-false while ~p is false, so its
    // negation is never p), so ws never reallocates under us and the
    // bounds can live in registers.
    std::vector<Watcher>& ws = watches_[p.code()];
    Watcher* const wbegin = ws.data();
    Watcher* const wend = wbegin + ws.size();
    Watcher* out = wbegin;
    Watcher* in = wbegin;
    for (; in != wend; ++in) {
      // Fast path: blocker already true.
      if (ValueCode(in->blocker) == 1) {
        *out++ = *in;
        continue;
      }
      const ClauseRef c = in->cref;
      // Normalize so the false watched literal (~p) is c[1].
      const Lit false_lit = ~p;
      if (arena_.LitAt(c, 0) == false_lit) arena_.SwapLits(c, 0, 1);
      ARBITER_DCHECK(arena_.LitAt(c, 1) == false_lit);
      // If the other watch is true the clause is satisfied.
      const Lit first = arena_.LitAt(c, 0);
      const int first_value = ValueCode(first);
      if (first_value == 1) {
        *out++ = Watcher{c, first};
        continue;
      }
      // Look for a replacement watch.
      bool moved = false;
      const int size = arena_.Size(c);
      for (int k = 2; k < size; ++k) {
        if (ValueCode(arena_.LitAt(c, k)) != 0) {
          arena_.SwapLits(c, 1, k);
          watches_[(~arena_.LitAt(c, 1)).code()].push_back(
              Watcher{c, first});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Clause is unit or conflicting.
      if (first_value == 0) {
        conflict = c;
        *out++ = Watcher{c, first};
        // Copy the remaining watchers and stop propagating.
        for (++in; in != wend; ++in) *out++ = *in;
        qhead_ = static_cast<int>(trail_.size());
        break;
      }
      *out++ = Watcher{c, first};
      UncheckedEnqueue(first, c);
      ++stats_.propagations;
    }
    ws.resize(out - wbegin);
    if (conflict != kClauseRefUndef) break;
  }
  return conflict;
}

void Solver::CancelUntil(int target_level) {
  if (DecisionLevel() <= target_level) return;
  const int bound = trail_lim_[target_level];
  for (int i = static_cast<int>(trail_.size()) - 1; i >= bound; --i) {
    Var v = trail_[i].var();
    polarity_[v] = (assigns_[v] == LBool::kTrue);
    assigns_[v] = LBool::kUndef;
    reason_[v] = kClauseRefUndef;
    if (!HeapContains(v)) HeapInsert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(target_level);
  qhead_ = bound;
}

// ---------------------------------------------------------------------------
// Conflict analysis (first UIP + recursive minimization)
// ---------------------------------------------------------------------------

uint32_t Solver::ComputeLbd(ClauseRef c) {
  ++lbd_stamp_counter_;
  uint32_t lbd = 0;
  const int size = arena_.Size(c);
  for (int i = 0; i < size; ++i) {
    const int lvl = level_[arena_.LitAt(c, i).var()];
    if (lvl <= 0) continue;
    if (static_cast<size_t>(lvl) >= lbd_stamp_.size()) {
      lbd_stamp_.resize(lvl + 1, 0);
    }
    if (lbd_stamp_[lvl] != lbd_stamp_counter_) {
      lbd_stamp_[lvl] = lbd_stamp_counter_;
      ++lbd;
    }
  }
  return lbd;
}

uint32_t Solver::ComputeLbd(const std::vector<Lit>& lits) {
  ++lbd_stamp_counter_;
  uint32_t lbd = 0;
  for (const Lit l : lits) {
    const int lvl = level_[l.var()];
    if (lvl <= 0) continue;
    if (static_cast<size_t>(lvl) >= lbd_stamp_.size()) {
      lbd_stamp_.resize(lvl + 1, 0);
    }
    if (lbd_stamp_[lvl] != lbd_stamp_counter_) {
      lbd_stamp_[lvl] = lbd_stamp_counter_;
      ++lbd;
    }
  }
  return lbd;
}

void Solver::Analyze(ClauseRef conflict, std::vector<Lit>* out_learnt,
                     int* out_btlevel) {
  out_learnt->clear();
  out_learnt->push_back(Lit());  // placeholder for the asserting literal
  int counter = 0;
  Lit p;  // undefined
  int index = static_cast<int>(trail_.size()) - 1;

  ClauseRef reason = conflict;
  do {
    ARBITER_DCHECK(reason != kClauseRefUndef);
    if (arena_.Learnt(reason)) {
      ClauseBumpActivity(reason);
      // Glucose-style LBD refresh: a learnt clause participating in
      // another conflict gets its glue re-measured; keep the minimum.
      const uint32_t lbd = arena_.Lbd(reason) > 2 ? ComputeLbd(reason) : 0;
      if (lbd > 0 && lbd < arena_.Lbd(reason)) {
        arena_.SetLbd(reason, lbd);
        ++stats_.lbd_updates;
      }
    }
    const int size = arena_.Size(reason);
    for (int j = 0; j < size; ++j) {
      const Lit q = arena_.LitAt(reason, j);
      if (p.defined() && q == p) continue;
      Var v = q.var();
      if (!seen_[v] && level_[v] > 0) {
        seen_[v] = true;
        VarBumpActivity(v);
        if (level_[v] >= DecisionLevel()) {
          ++counter;
        } else {
          out_learnt->push_back(q);
        }
      }
    }
    // Select the next trail literal to expand.
    while (!seen_[trail_[index].var()]) --index;
    p = trail_[index];
    --index;
    reason = reason_[p.var()];
    seen_[p.var()] = false;
    --counter;
  } while (counter > 0);
  (*out_learnt)[0] = ~p;

  // Recursive clause minimization.
  analyze_toclear_ = *out_learnt;
  for (const Lit l : *out_learnt) seen_[l.var()] = true;
  uint32_t abstract_levels = 0;
  for (size_t i = 1; i < out_learnt->size(); ++i) {
    abstract_levels |= 1u << (level_[(*out_learnt)[i].var()] & 31);
  }
  size_t keep = 1;
  for (size_t i = 1; i < out_learnt->size(); ++i) {
    Lit l = (*out_learnt)[i];
    if (reason_[l.var()] == kClauseRefUndef ||
        !LitRedundant(l, abstract_levels)) {
      (*out_learnt)[keep++] = l;
    } else {
      ++stats_.minimized_literals;
    }
  }
  out_learnt->resize(keep);

  for (Lit l : analyze_toclear_) seen_[l.var()] = false;
  analyze_toclear_.clear();

  // Find the backtrack level: the second-highest level in the clause.
  if (out_learnt->size() == 1) {
    *out_btlevel = 0;
  } else {
    size_t max_i = 1;
    for (size_t i = 2; i < out_learnt->size(); ++i) {
      if (level_[(*out_learnt)[i].var()] >
          level_[(*out_learnt)[max_i].var()]) {
        max_i = i;
      }
    }
    std::swap((*out_learnt)[1], (*out_learnt)[max_i]);
    *out_btlevel = level_[(*out_learnt)[1].var()];
  }

  stats_.learnt_literals += out_learnt->size();
}

bool Solver::LitRedundant(Lit l, uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(l);
  const size_t top = analyze_toclear_.size();
  while (!analyze_stack_.empty()) {
    Lit cur = analyze_stack_.back();
    analyze_stack_.pop_back();
    const ClauseRef reason = reason_[cur.var()];
    ARBITER_DCHECK(reason != kClauseRefUndef);
    const int size = arena_.Size(reason);
    for (int j = 0; j < size; ++j) {
      const Lit q = arena_.LitAt(reason, j);
      Var v = q.var();
      if (v == cur.var()) continue;  // the implied literal itself
      if (seen_[v] || level_[v] == 0) continue;
      if (reason_[v] != kClauseRefUndef &&
          ((1u << (level_[v] & 31)) & abstract_levels) != 0) {
        seen_[v] = true;
        analyze_stack_.push_back(q);
        analyze_toclear_.push_back(q);
      } else {
        // Not removable: undo the marks added during this call.
        for (size_t j2 = top; j2 < analyze_toclear_.size(); ++j2) {
          seen_[analyze_toclear_[j2].var()] = false;
        }
        analyze_toclear_.resize(top);
        return false;
      }
    }
  }
  return true;
}

void Solver::AnalyzeFinal(Lit p, std::vector<Lit>* out_conflict) {
  out_conflict->clear();
  out_conflict->push_back(p);
  if (DecisionLevel() == 0) return;
  seen_[p.var()] = true;
  for (int i = static_cast<int>(trail_.size()) - 1;
       i >= trail_lim_[0]; --i) {
    Var v = trail_[i].var();
    if (!seen_[v]) continue;
    const ClauseRef reason = reason_[v];
    if (reason == kClauseRefUndef) {
      ARBITER_DCHECK(level_[v] > 0);
      out_conflict->push_back(~trail_[i]);
    } else {
      const int size = arena_.Size(reason);
      for (int j = 0; j < size; ++j) {
        const Lit q = arena_.LitAt(reason, j);
        if (q.var() != v && level_[q.var()] > 0) seen_[q.var()] = true;
      }
    }
    seen_[v] = false;
  }
  seen_[p.var()] = false;
}

// ---------------------------------------------------------------------------
// Activity heuristics
// ---------------------------------------------------------------------------

void Solver::VarBumpActivity(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (HeapContains(v)) HeapUpdate(v);
}

void Solver::VarDecayActivity() { var_inc_ /= var_decay_; }

void Solver::ClauseBumpActivity(ClauseRef c) {
  const float a = arena_.Activity(c) + static_cast<float>(clause_inc_);
  arena_.SetActivity(c, a);
  if (a > 1e20f) {
    for (ClauseRef l : learnts_) {
      if (!arena_.Deleted(l)) {
        arena_.SetActivity(l, arena_.Activity(l) * 1e-20f);
      }
    }
    clause_inc_ *= 1e-20;
  }
}

void Solver::ClauseDecayActivity() { clause_inc_ /= clause_decay_; }

Lit Solver::PickBranchLit() {
  while (!HeapEmpty()) {
    Var v = HeapRemoveMax();
    if (Value(v) == LBool::kUndef) {
      return Lit(v, !polarity_[v]);  // phase saving
    }
  }
  return Lit();  // undefined: all variables assigned
}

// ---------------------------------------------------------------------------
// Binary max-heap keyed on activity_
// ---------------------------------------------------------------------------

void Solver::HeapInsert(Var v) {
  ARBITER_DCHECK(!HeapContains(v));
  heap_index_[v] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  HeapPercolateUp(heap_index_[v]);
}

void Solver::HeapUpdate(Var v) {
  HeapPercolateUp(heap_index_[v]);
  HeapPercolateDown(heap_index_[v]);
}

Var Solver::HeapRemoveMax() {
  ARBITER_DCHECK(!heap_.empty());
  Var top = heap_[0];
  heap_[0] = heap_.back();
  heap_index_[heap_[0]] = 0;
  heap_.pop_back();
  heap_index_[top] = -1;
  if (!heap_.empty()) HeapPercolateDown(0);
  return top;
}

void Solver::HeapPercolateUp(int i) {
  Var v = heap_[i];
  while (i > 0) {
    int parent = (i - 1) >> 1;
    if (activity_[heap_[parent]] >= activity_[v]) break;
    heap_[i] = heap_[parent];
    heap_index_[heap_[i]] = i;
    i = parent;
  }
  heap_[i] = v;
  heap_index_[v] = i;
}

void Solver::HeapPercolateDown(int i) {
  Var v = heap_[i];
  const int n = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        activity_[heap_[child + 1]] > activity_[heap_[child]]) {
      ++child;
    }
    if (activity_[heap_[child]] <= activity_[v]) break;
    heap_[i] = heap_[child];
    heap_index_[heap_[i]] = i;
    i = child;
  }
  heap_[i] = v;
  heap_index_[v] = i;
}

// ---------------------------------------------------------------------------
// Learnt clause DB reduction
// ---------------------------------------------------------------------------

void Solver::ReduceDB() {
  ++stats_.reduce_db_runs;
  // Drop refs already deleted in earlier passes, then split off the
  // eviction candidates: ternary-or-longer, non-glue, not currently a
  // reason.  Binaries and glue clauses (LBD <= 2) are kept forever.
  size_t live = 0;
  for (ClauseRef c : learnts_) {
    if (!arena_.Deleted(c)) learnts_[live++] = c;
  }
  learnts_.resize(live);
  std::vector<ClauseRef> cands;
  cands.reserve(learnts_.size());
  for (ClauseRef c : learnts_) {
    if (arena_.Size(c) > 2 && arena_.Lbd(c) > 2 && !Locked(c)) {
      cands.push_back(c);
    }
  }
  // Worst first: highest LBD, then lowest activity.  Only the
  // worse-half partition is needed, not a total order.
  const auto worse = [this](ClauseRef a, ClauseRef b) {
    const uint32_t la = arena_.Lbd(a);
    const uint32_t lb = arena_.Lbd(b);
    if (la != lb) return la > lb;
    const float aa = arena_.Activity(a);
    const float ab = arena_.Activity(b);
    if (aa != ab) return aa < ab;
    return a < b;  // deterministic tie-break on arena age
  };
  const size_t half = cands.size() / 2;
  if (half > 0 && half < cands.size()) {
    std::nth_element(cands.begin(), cands.begin() + half, cands.end(), worse);
  }
  const double threshold =
      clause_inc_ / std::max<size_t>(learnts_.size(), 1);
  for (size_t i = 0; i < cands.size(); ++i) {
    ClauseRef c = cands[i];
    if (i < half || arena_.Activity(c) < threshold) {
      RemoveClause(c);
    }
  }
  live = 0;
  for (ClauseRef c : learnts_) {
    if (!arena_.Deleted(c)) learnts_[live++] = c;
  }
  learnts_.resize(live);
  MaybeGarbageCollect();
}

// ---------------------------------------------------------------------------
// Garbage collection (two-space arena compaction)
// ---------------------------------------------------------------------------

void Solver::MaybeGarbageCollect() {
  // Compact once deleted clauses waste ~20% of the arena.
  if (arena_.size() > 1024 && arena_.wasted() * 5 > arena_.size()) {
    GarbageCollect();
  }
}

void Solver::GarbageCollect() {
  ClauseArena to;
  to.Reserve(arena_.size() - arena_.wasted());
  RelocAll(&to);
  ++stats_.gc_runs;
  stats_.gc_words_reclaimed += arena_.size() - to.size();
  arena_ = std::move(to);
}

void Solver::RelocAll(ClauseArena* to) {
  // Watchers reference only attached (live) clauses.
  for (std::vector<Watcher>& ws : watches_) {
    for (Watcher& w : ws) w.cref = arena_.Reloc(w.cref, to);
  }
  for (std::vector<BinWatcher>& ws : bin_watches_) {
    for (BinWatcher& w : ws) w.cref = arena_.Reloc(w.cref, to);
  }
  // Reasons of currently assigned variables; CancelUntil/SimplifyDb
  // clear all others.
  for (const Lit l : trail_) {
    ClauseRef& r = reason_[l.var()];
    if (r != kClauseRefUndef) r = arena_.Reloc(r, to);
  }
  auto rebuild = [this, to](std::vector<ClauseRef>& list) {
    size_t keep = 0;
    for (ClauseRef c : list) {
      if (!arena_.Deleted(c)) list[keep++] = arena_.Reloc(c, to);
    }
    list.resize(keep);
  };
  rebuild(clauses_);
  rebuild(learnts_);
}

// ---------------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------------

double Solver::LubySequence(double y, int i) {
  // Finite-subsequence trick from MiniSat.
  int size = 1;
  int seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) >> 1;
    --seq;
    i = i % size;
  }
  return std::pow(y, seq);
}

SolveStatus Solver::Search(int64_t max_conflicts) {
  int64_t conflicts_here = 0;
  std::vector<Lit> learnt;
  if (max_learnts_ < 0) {
    max_learnts_ = max_learnts_factor_ * std::max(num_problem_clauses_, 100);
  }

  for (;;) {
    ClauseRef conflict = Propagate();
    if (conflict != kClauseRefUndef) {
      ++stats_.conflicts;
      ++conflicts_here;
      if (DecisionLevel() == 0) {
        if (proof_ != nullptr) proof_->OnAdd({});
        return SolveStatus::kUnsat;
      }
      int btlevel = 0;
      Analyze(conflict, &learnt, &btlevel);
      // LBD must be measured before backtracking unassigns the
      // asserting literal's level.
      const uint32_t lbd = ComputeLbd(learnt);
      // Dynamic-restart bookkeeping, on conflict-time data (trail depth
      // before backtracking).  A deep trail postpones the pending
      // restart; otherwise the LBD joins the recent ring.
      trail_size_sum_ += trail_.size();
      if (lbd_ring_size_ == kLbdRingSize &&
          stats_.conflicts >= kTrailBlockWarmup &&
          static_cast<double>(trail_.size()) * stats_.conflicts >
              kTrailBlockFactor * static_cast<double>(trail_size_sum_)) {
        lbd_ring_size_ = 0;
        lbd_ring_pos_ = 0;
        lbd_ring_sum_ = 0;
        ++stats_.blocked_restarts;
      }
      if (lbd_ring_size_ == kLbdRingSize) {
        lbd_ring_sum_ -= lbd_ring_[lbd_ring_pos_];
      } else {
        ++lbd_ring_size_;
      }
      lbd_ring_[lbd_ring_pos_] = lbd;
      lbd_ring_sum_ += lbd;
      lbd_ring_pos_ = (lbd_ring_pos_ + 1) % kLbdRingSize;
      CancelUntil(btlevel);
      if (learnt.size() == 1) {
        UncheckedEnqueue(learnt[0], kClauseRefUndef);  // logs the unit
      } else {
        if (proof_ != nullptr) proof_->OnAdd(learnt);
        ClauseRef c = AllocClause(learnt, /*learnt=*/true);
        arena_.SetLbd(c, lbd);
        ClauseBumpActivity(c);
        AttachClause(c);
        UncheckedEnqueue(learnt[0], c);
      }
      ++stats_.learnt_clauses;
      stats_.lbd_sum += lbd;
      if (lbd <= 2) ++stats_.glue_learnts;
      VarDecayActivity();
      ClauseDecayActivity();
      continue;
    }

    // No conflict.
    if (conflicts_here >= max_conflicts) {
      CancelUntil(0);
      return SolveStatus::kUnknown;  // restart (Luby budget cap)
    }
    if (lbd_ring_size_ == kLbdRingSize &&
        static_cast<double>(lbd_ring_sum_) * kRestartMargin *
                static_cast<double>(stats_.learnt_clauses) >
            static_cast<double>(stats_.lbd_sum) * kLbdRingSize) {
      // Recent learnt clauses are worse than the lifetime trend:
      // restart early rather than grind on in a bad region.
      lbd_ring_size_ = 0;
      lbd_ring_pos_ = 0;
      lbd_ring_sum_ = 0;
      CancelUntil(0);
      return SolveStatus::kUnknown;
    }
    if (conflict_budget_ >= 0 &&
        static_cast<int64_t>(stats_.conflicts) > conflict_budget_) {
      CancelUntil(0);
      return SolveStatus::kUnknown;
    }
    if (num_learnt_clauses_ > max_learnts_ +
                                  static_cast<double>(trail_.size())) {
      ReduceDB();
      max_learnts_ *= learnt_growth_;
    }

    // Assumptions first, then a decision.
    Lit next;
    while (DecisionLevel() < static_cast<int>(assumptions_.size())) {
      Lit a = assumptions_[DecisionLevel()];
      if (Value(a) == LBool::kTrue) {
        trail_lim_.push_back(static_cast<int>(trail_.size()));
      } else if (Value(a) == LBool::kFalse) {
        // The assumption is refuted by the others already enqueued:
        // extract the failing subset for FailedAssumptions().
        std::vector<Lit> negated_core;
        AnalyzeFinal(~a, &negated_core);
        // negated_core is the clause ¬(failed assumptions) — implied
        // by the database alone, so it is a legal DRAT addition; the
        // certifier closes the refutation against the assumption units.
        if (proof_ != nullptr) proof_->OnAdd(negated_core);
        failed_assumptions_.clear();
        for (Lit l : negated_core) failed_assumptions_.push_back(~l);
        return SolveStatus::kUnsat;
      } else {
        next = a;
        break;
      }
    }
    if (!next.defined()) {
      next = PickBranchLit();
      if (!next.defined()) {
        // All variables assigned: a model.
        model_.assign(assigns_.begin(), assigns_.end());
        return SolveStatus::kSat;
      }
      ++stats_.decisions;
    }
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    UncheckedEnqueue(next, kClauseRefUndef);
  }
}

void Solver::SimplifyDb() {
  if (!ok_ || DecisionLevel() != 0) return;
  // Make sure root-level propagation is complete first.
  if (Propagate() != kClauseRefUndef) {
    if (proof_ != nullptr) proof_->OnAdd({});
    ok_ = false;
    return;
  }
  // Root-level assignments are permanent facts; drop their reason
  // references so removing the (now satisfied) reason clauses is safe.
  for (Lit l : trail_) reason_[l.var()] = kClauseRefUndef;
  auto process = [this](std::vector<ClauseRef>& list) {
    size_t keep = 0;
    for (ClauseRef c : list) {
      if (arena_.Deleted(c)) continue;  // stale ref from ReduceDB
      if (Satisfied(c)) {
        RemoveClause(c);
        continue;
      }
      // Not satisfied and fully propagated at level 0: both watches
      // are unassigned, so falsified literals sit at positions >= 2
      // and can be dropped without touching the watcher lists.
      std::vector<Lit> old_lits;
      if (proof_ != nullptr) {
        const int s = arena_.Size(c);
        old_lits.reserve(s);
        for (int k = 0; k < s; ++k) old_lits.push_back(arena_.LitAt(c, k));
      }
      int size = arena_.Size(c);
      for (int k = size - 1; k >= 2; --k) {
        if (Value(arena_.LitAt(c, k)) == LBool::kFalse) {
          arena_.SetLitAt(c, k, arena_.LitAt(c, size - 1));
          --size;
        }
      }
      if (proof_ != nullptr && size != arena_.Size(c)) {
        // The strip loop compacted in place; the survivors are the
        // first `size` arena slots.
        std::vector<Lit> new_lits;
        new_lits.reserve(size);
        for (int k = 0; k < size; ++k) new_lits.push_back(arena_.LitAt(c, k));
        proof_->OnAdd(new_lits);
        proof_->OnDelete(old_lits);
      }
      if (size != arena_.Size(c)) {
        // A clause stripped down to two literals moves to the binary
        // watch tier.
        const bool rebin = (size == 2);
        if (rebin) DetachClause(c);
        arena_.Shrink(c, size);
        if (rebin) AttachClause(c);
      }
      list[keep++] = c;
    }
    list.resize(keep);
  };
  process(clauses_);
  process(learnts_);
  MaybeGarbageCollect();
}

SolveStatus Solver::Solve() { return SolveAssuming({}); }

SolveStatus Solver::SolveAssuming(const std::vector<Lit>& assumptions) {
  if (!ok_) return SolveStatus::kUnsat;
  SimplifyDb();
  if (!ok_) return SolveStatus::kUnsat;
  assumptions_ = assumptions;
  failed_assumptions_.clear();
  model_.clear();

  SolveStatus status = SolveStatus::kUnknown;
  for (int restart = 0; status == SolveStatus::kUnknown; ++restart) {
    const double base = 10000.0;
    int64_t budget = static_cast<int64_t>(LubySequence(2.0, restart) * base);
    status = Search(budget);
    if (status == SolveStatus::kUnknown) ++stats_.restarts;
    if (conflict_budget_ >= 0 &&
        static_cast<int64_t>(stats_.conflicts) > conflict_budget_) {
      break;
    }
  }
  CancelUntil(0);
  assumptions_.clear();
  return status;
}

}  // namespace arbiter::sat
