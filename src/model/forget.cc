#include "model/forget.h"

#include <vector>

#include "util/bit.h"
#include "util/logging.h"

namespace arbiter {

ModelSet Forget(const ModelSet& models, int var) {
  ARBITER_CHECK(var >= 0 && var < models.num_terms());
  const uint64_t bit = 1ULL << var;
  std::vector<uint64_t> out;
  out.reserve(models.size() * 2);
  for (uint64_t m : models) {
    out.push_back(m);
    out.push_back(m ^ bit);
  }
  return ModelSet::FromMasks(std::move(out), models.num_terms());
}

ModelSet ForgetAll(const ModelSet& models, uint64_t var_mask) {
  ARBITER_CHECK((var_mask & ~LowMask(models.num_terms())) == 0);
  ModelSet out = models;
  ForEachBit(var_mask, [&](int var) { out = Forget(out, var); });
  return out;
}

bool IsIndependentOf(const ModelSet& models, int var) {
  ARBITER_CHECK(var >= 0 && var < models.num_terms());
  const uint64_t bit = 1ULL << var;
  for (uint64_t m : models) {
    if (!models.Contains(m ^ bit)) return false;
  }
  return true;
}

}  // namespace arbiter
