#include "change/backend.h"

#include <string>
#include <utility>
#include <vector>

#include "logic/vocabulary.h"
#include "model/distance.h"
#include "solve/arbitration_sat.h"
#include "solve/dalal_sat.h"
#include "solve/sum_sat.h"

namespace arbiter {

namespace {

/// Σ metric weights a counting cardinality path will tolerate: the
/// totalizer is quadratic in the repeated-literal count, so the
/// weighted diameter must stay modest.
constexpr int64_t kMaxCountingDiameter = 1024;

Status ValidateMetric(const DistanceSemantics& semantics) {
  for (int64_t w : semantics.metric) {
    if (w < 0) {
      return Status::InvalidArgument(
          "metric weights must be non-negative, got " + std::to_string(w));
    }
  }
  return Status::OK();
}

/// The aggregated distance at an argmin model, rendered in decimal.
std::string EnumOptimalAt(const DistanceSemantics& semantics,
                          const ModelSet& psi, uint64_t model) {
  switch (semantics.aggregator) {
    case DistanceAggregator::kMin:
      return std::to_string(MetricMinDist(semantics, psi, model));
    case DistanceAggregator::kMax:
      return std::to_string(MetricOverallDistBounded(
          semantics, psi, model,
          MetricDiameter(semantics, psi.num_terms()) + 1));
    case DistanceAggregator::kSum: {
      SumDistOracle oracle(psi, semantics.metric);
      return std::to_string(oracle(model));
    }
    case DistanceAggregator::kWeightedSum: {
      double total = 0.0;
      for (uint64_t j : psi) {
        total += static_cast<double>(MetricDist(semantics, model, j)) *
                 semantics.model_weight(j);
      }
      return std::to_string(total);
    }
  }
  return "";
}

class EnumeratingBackend : public DistanceBackend {
 public:
  std::string name() const override { return "enum"; }

  int MaxTerms(const DistanceSemantics&) const override {
    return kMaxEnumTerms;
  }

  Result<DistanceChangeResult> Change(const DistanceSemantics& semantics,
                                      const Formula& psi, const Formula& mu,
                                      int num_terms,
                                      int64_t max_models) override {
    if (num_terms < 1 || num_terms > kMaxEnumTerms) {
      return Status::CapacityExceeded(
          "enumerating backend serves 1.." + std::to_string(kMaxEnumTerms) +
          " atoms (2^n interpretations), got " + std::to_string(num_terms) +
          "; select the counting backend");
    }
    ARBITER_RETURN_NOT_OK(ValidateMetric(semantics));
    if (semantics.aggregator == DistanceAggregator::kWeightedSum &&
        !semantics.model_weight) {
      return Status::InvalidArgument(
          "weighted-sum semantics needs a model_weight function");
    }

    const ModelSet psi_models = ModelSet::FromFormula(psi, num_terms);
    const ModelSet mu_models = ModelSet::FromFormula(mu, num_terms);
    DistanceChangeResult result;
    result.models = SemanticArgmin(semantics, psi_models, mu_models);
    if (!result.models.empty() && !psi_models.empty()) {
      result.optimal =
          EnumOptimalAt(semantics, psi_models, result.models[0]);
    }
    if (max_models >= 0 &&
        static_cast<int64_t>(result.models.size()) > max_models) {
      std::vector<uint64_t> head(result.models.begin(),
                                 result.models.begin() + max_models);
      result.models = ModelSet::FromMasks(std::move(head), num_terms);
      result.truncated = true;
    }
    return result;
  }
};

class CountingBackend : public DistanceBackend {
 public:
  std::string name() const override { return "counting"; }

  int MaxTerms(const DistanceSemantics& semantics) const override {
    switch (semantics.aggregator) {
      case DistanceAggregator::kSum:
        return 120;  // exact __int128 counting; models omitted past 63
      case DistanceAggregator::kWeightedSum:
        return 0;  // needs per-model weights: enumeration only
      default:
        return kMaxVocabularyTerms - 1;  // uint64 model masks
    }
  }

  Result<DistanceChangeResult> Change(const DistanceSemantics& semantics,
                                      const Formula& psi, const Formula& mu,
                                      int num_terms,
                                      int64_t max_models) override {
    ARBITER_RETURN_NOT_OK(ValidateMetric(semantics));
    if (semantics.aggregator == DistanceAggregator::kWeightedSum) {
      return Status::Unsupported(
          "the counting backend cannot serve weighted-sum semantics "
          "(per-model weights require enumerating Mod(psi)); use the "
          "enum backend");
    }
    const int cap = MaxTerms(semantics);
    if (num_terms < 1 || num_terms > cap) {
      return Status::CapacityExceeded(
          "counting backend serves 1.." + std::to_string(cap) +
          " atoms for " + AggregatorName(semantics.aggregator) +
          " aggregation, got " + std::to_string(num_terms));
    }
    if (!semantics.unit_metric() &&
        semantics.aggregator != DistanceAggregator::kSum) {
      int64_t diameter = 0;
      for (int b = 0; b < num_terms; ++b) {
        diameter += semantics.AtomWeight(b);
      }
      if (diameter > kMaxCountingDiameter) {
        return Status::CapacityExceeded(
            "weighted diameter " + std::to_string(diameter) +
            " exceeds the counting cardinality budget of " +
            std::to_string(kMaxCountingDiameter));
      }
    }

    switch (semantics.aggregator) {
      case DistanceAggregator::kMin:
        return MinChange(semantics, psi, mu, num_terms, max_models);
      case DistanceAggregator::kMax:
        return MaxChange(semantics, psi, mu, num_terms, max_models);
      case DistanceAggregator::kSum:
        return SumChange(semantics, psi, mu, num_terms, max_models);
      case DistanceAggregator::kWeightedSum:
        break;  // rejected above
    }
    return Status::Internal("unreachable aggregator");
  }

 private:
  Result<DistanceChangeResult> MinChange(const DistanceSemantics& semantics,
                                         const Formula& psi,
                                         const Formula& mu, int num_terms,
                                         int64_t max_models) {
    solve::SatRevisionResult sat = solve::SatDalalRevise(
        psi, mu, num_terms, max_models, semantics.metric);
    DistanceChangeResult result;
    result.models = ModelSet::FromMasks(std::move(sat.models), num_terms);
    result.truncated = sat.truncated;
    // ψ-unsat convention (result is Mod(μ)) leaves the distance
    // undefined, matching the enumerating backend's empty `optimal`.
    if (!result.models.empty() && !sat.psi_unsat) {
      result.optimal = std::to_string(sat.min_distance);
    }
    return result;
  }

  Result<DistanceChangeResult> MaxChange(const DistanceSemantics& semantics,
                                         const Formula& psi,
                                         const Formula& mu, int num_terms,
                                         int64_t max_models) {
    solve::CegarResult cegar = solve::CegarMaxFitting(
        psi, mu, num_terms, max_models, semantics.metric);
    DistanceChangeResult result;
    result.models = ModelSet::FromMasks(std::move(cegar.models), num_terms);
    result.truncated = cegar.truncated;
    if (!result.models.empty()) {
      result.optimal = std::to_string(cegar.optimal_value);
    }
    return result;
  }

  Result<DistanceChangeResult> SumChange(const DistanceSemantics& semantics,
                                         const Formula& psi,
                                         const Formula& mu, int num_terms,
                                         int64_t max_models) {
    solve::SumFittingResult sum = solve::SatSumFitting(
        psi, mu, num_terms, max_models, semantics.metric, &column_cache_);
    if (!sum.completed) {
      return Status::CapacityExceeded(
          "counting budget exhausted for sum aggregation over " +
          std::to_string(num_terms) + " atoms");
    }
    DistanceChangeResult result;
    if (sum.psi_unsat || sum.mu_unsat) {
      result.models = ModelSet(num_terms <= kMaxVocabularyTerms ? num_terms
                                                                : 0);
      return result;
    }
    if (num_terms > kMaxVocabularyTerms - 1) {
      result.models_omitted = true;
      result.models = ModelSet(0);
    } else {
      result.models = ModelSet::FromMasks(std::move(sum.models), num_terms);
      result.truncated = sum.truncated;
    }
    result.optimal = sum.optimal_decimal;
    return result;
  }

  solve::ColumnCountCache column_cache_;
};

}  // namespace

std::shared_ptr<DistanceBackend> MakeEnumeratingBackend() {
  return std::make_shared<EnumeratingBackend>();
}

std::shared_ptr<DistanceBackend> MakeCountingBackend() {
  return std::make_shared<CountingBackend>();
}

Result<std::shared_ptr<DistanceBackend>> MakeDistanceBackend(
    const std::string& name) {
  if (name == "enum") return MakeEnumeratingBackend();
  if (name == "counting") return MakeCountingBackend();
  std::string known;
  for (const std::string& n : DistanceBackendNames()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  return Status::NotFound("unknown distance backend \"" + name +
                          "\"; known backends: " + known);
}

std::vector<std::string> DistanceBackendNames() {
  return {"enum", "counting"};
}

Result<BackendOperatorSpec> BackendOperatorFor(const std::string& op_name,
                                               std::vector<int64_t> metric) {
  BackendOperatorSpec spec;
  if (op_name == "dalal") {
    spec.semantics = MinSemantics(std::move(metric));
    return spec;
  }
  if (op_name == "revesz-max") {
    spec.semantics = MaxSemantics(std::move(metric));
    return spec;
  }
  if (op_name == "revesz-sum") {
    spec.semantics = SumSemantics(std::move(metric));
    return spec;
  }
  if (op_name == "arbitration-max") {
    spec.semantics = MaxSemantics(std::move(metric));
    spec.arbitration = true;
    return spec;
  }
  if (op_name == "arbitration-sum") {
    spec.semantics = SumSemantics(std::move(metric));
    spec.arbitration = true;
    return spec;
  }
  return Status::Unsupported(
      "operator \"" + op_name +
      "\" is not a distance argmin; distance backends serve dalal, "
      "revesz-max, revesz-sum, arbitration-max, arbitration-sum");
}

}  // namespace arbiter
