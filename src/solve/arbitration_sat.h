#ifndef ARBITER_SOLVE_ARBITRATION_SAT_H_
#define ARBITER_SOLVE_ARBITRATION_SAT_H_

#include <cstdint>
#include <vector>

#include "logic/formula.h"

/// \file arbitration_sat.h
/// SAT-based model-fitting and arbitration for vocabularies beyond the
/// enumeration limit.  The paper's max-based fitting
///
///   ψ ▷ μ = argmin_{x ⊨ μ} max_{y ⊨ ψ} dist(x, y)
///
/// is a min–max problem; we solve it with counterexample-guided
/// abstraction refinement (CEGAR):
///
///   1. propose a candidate x ⊨ μ consistent with all distance bounds
///      collected so far (master problem, assumptions on unary
///      counters);
///   2. evaluate odist(ψ, x) exactly by maximizing the distance with a
///      second SAT search (oracle);
///   3. either tighten the incumbent or add the maximizing y as a new
///      distance-bound witness, and repeat until the master is
///      unsatisfiable at bound best-1.

namespace arbiter::solve {

/// odist(ψ, point) = max_{y ⊨ ψ} dist(point, y), computed by binary
/// search with cardinality constraints.  Returns -1 if ψ is
/// unsatisfiable.  If `witness` is non-null it receives a maximizing y.
/// A non-empty `metric` switches to the weighted Hamming distance
/// (per-atom weights, difference bits repeated weight-many times).
int SatOverallDist(const Formula& psi, int num_terms, uint64_t point,
                   uint64_t* witness = nullptr,
                   const std::vector<int64_t>& metric = {});

/// Outcome of a CEGAR min–max run.
struct CegarResult {
  /// min_{x ⊨ μ} odist(ψ, x); -1 if ψ or μ is unsatisfiable.
  int optimal_value = -1;
  /// One optimal x.
  uint64_t optimal_model = 0;
  /// All optimal models of μ (sorted, capped at max_models).
  std::vector<uint64_t> models;
  bool truncated = false;
  /// Number of master/oracle iterations.
  int iterations = 0;
};

/// Computes the paper's max-based model-fitting ψ ▷ μ by CEGAR
/// (n <= 63 terms).  Enumerates up to `max_models` optimal models.
/// A non-empty `metric` switches the distance to weighted Hamming.
CegarResult CegarMaxFitting(const Formula& psi, const Formula& mu,
                            int num_terms, int64_t max_models = 1024,
                            const std::vector<int64_t>& metric = {});

/// Arbitration ψ Δ φ = (ψ ∨ φ) ▷ ⊤ via CEGAR.
CegarResult CegarMaxArbitration(const Formula& psi, const Formula& phi,
                                int num_terms, int64_t max_models = 1024,
                                const std::vector<int64_t>& metric = {});

}  // namespace arbiter::solve

#endif  // ARBITER_SOLVE_ARBITRATION_SAT_H_
