#ifndef ARBITER_SAT_TYPES_H_
#define ARBITER_SAT_TYPES_H_

#include <cstdint>

#include "util/logging.h"

/// \file types.h
/// Core SAT solver value types: variables, literals, ternary values.
///
/// Variables are dense nonnegative integers.  A literal packs a
/// variable and a sign into one int: lit = 2*var + (negated ? 1 : 0),
/// the classic MiniSat encoding.

namespace arbiter::sat {

/// A propositional variable (0-based index).
using Var = int;

inline constexpr Var kUndefVar = -1;

/// A literal: variable plus sign.
class Lit {
 public:
  Lit() : code_(-2) {}
  Lit(Var v, bool negated) : code_(2 * v + (negated ? 1 : 0)) {
    ARBITER_DCHECK(v >= 0);
  }

  static Lit FromCode(int code) {
    Lit l;
    l.code_ = code;
    return l;
  }

  /// Positive literal of v.
  static Lit Pos(Var v) { return Lit(v, false); }
  /// Negative literal of v.
  static Lit Neg(Var v) { return Lit(v, true); }

  Var var() const { return code_ >> 1; }
  bool negated() const { return code_ & 1; }
  Lit operator~() const { return FromCode(code_ ^ 1); }
  int code() const { return code_; }
  bool defined() const { return code_ >= 0; }

  bool operator==(const Lit& o) const { return code_ == o.code_; }
  bool operator!=(const Lit& o) const { return code_ != o.code_; }
  bool operator<(const Lit& o) const { return code_ < o.code_; }

 private:
  int code_;
};

inline constexpr int kLitUndefCode = -2;

/// Ternary truth value.
enum class LBool : int8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

inline LBool BoolToLBool(bool b) { return b ? LBool::kTrue : LBool::kFalse; }

/// Applies a literal's sign to a variable's value.
inline LBool LitValue(LBool var_value, bool negated) {
  if (var_value == LBool::kUndef) return LBool::kUndef;
  bool v = (var_value == LBool::kTrue);
  return BoolToLBool(negated ? !v : v);
}

/// Result of a solve call.
enum class SolveStatus { kSat, kUnsat, kUnknown };

}  // namespace arbiter::sat

#endif  // ARBITER_SAT_TYPES_H_
