#ifndef ARBITER_SOLVE_DALAL_SAT_H_
#define ARBITER_SOLVE_DALAL_SAT_H_

#include <cstdint>
#include <vector>

#include "logic/formula.h"

/// \file dalal_sat.h
/// SAT-based Dalal revision that scales past the 2^n enumeration wall:
/// the minimum Hamming distance between Mod(ψ) and Mod(μ) is found by
/// binary search over a unary counter on XOR difference bits, and the
/// revised models are enumerated with AllSAT under the optimal bound.
/// This is experiment E8's "large vocabulary" arm (DESIGN.md).

namespace arbiter::solve {

/// Outcome of a SAT-based revision.
struct SatRevisionResult {
  /// Minimum (metric) distance between Mod(ψ) and Mod(μ); -1 if μ is
  /// unsatisfiable, 0 with `psi_unsat` set if ψ is unsatisfiable
  /// (convention: result is Mod(μ)).
  int min_distance = -1;
  bool psi_unsat = false;
  /// Models of ψ ∘_dalal μ (projected onto the vocabulary), sorted.
  std::vector<uint64_t> models;
  /// True iff enumeration stopped at the cap.
  bool truncated = false;
  /// Number of SAT solver calls made.
  int num_sat_calls = 0;
  /// With proof::CertificationEnabled(): UNSAT verdicts inside the
  /// binary search (and the degenerate unsatisfiable-input checks)
  /// whose DRAT refutations the independent checker accepted vs
  /// rejected.  Both stay 0 when certification is off.  Each step is
  /// certified *before* AllSAT enumeration adds blocking clauses,
  /// which are not formula-implied and would never certify.
  int unsat_steps_certified = 0;
  int unsat_steps_uncertified = 0;
};

/// Computes Dalal's revision of ψ by μ over an n-term vocabulary
/// (n <= 63) using CDCL + cardinality constraints only — no 2^n
/// enumeration.  At most `max_models` result models are produced.
/// A non-empty `metric` switches the distance to weighted Hamming
/// with the given per-atom weights (each difference bit is repeated
/// weight-many times into the cardinality counter, so keep Σ weights
/// modest — the counter is quadratic).
SatRevisionResult SatDalalRevise(const Formula& psi, const Formula& mu,
                                 int num_terms, int64_t max_models = 1024,
                                 const std::vector<int64_t>& metric = {});

}  // namespace arbiter::solve

#endif  // ARBITER_SOLVE_DALAL_SAT_H_
