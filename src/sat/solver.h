#ifndef ARBITER_SAT_SOLVER_H_
#define ARBITER_SAT_SOLVER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "sat/cnf.h"
#include "sat/types.h"

/// \file solver.h
/// A conflict-driven clause-learning (CDCL) SAT solver built from
/// scratch in the MiniSat tradition:
///
///  * two-watched-literal propagation with blocker literals,
///  * first-UIP conflict analysis with recursive clause minimization,
///  * exponential VSIDS variable activities with a binary heap,
///  * phase saving,
///  * Luby-sequence restarts,
///  * activity-driven learnt-clause database reduction,
///  * incremental solving under assumptions (used by AllSAT and the
///    CEGAR arbitration loop in src/solve/).

namespace arbiter::sat {

/// Aggregate solver statistics (monotone over the solver's lifetime).
struct SolverStats {
  uint64_t decisions = 0;
  uint64_t propagations = 0;
  uint64_t conflicts = 0;
  uint64_t restarts = 0;
  uint64_t learnt_clauses = 0;
  uint64_t learnt_literals = 0;
  uint64_t minimized_literals = 0;
  uint64_t reduce_db_runs = 0;
};

/// CDCL SAT solver.  Not thread-safe.  Typical use:
///
///   Solver s;
///   Var a = s.NewVar(), b = s.NewVar();
///   s.AddClause({Lit::Pos(a), Lit::Neg(b)});
///   if (s.Solve() == SolveStatus::kSat) { bool va = s.ModelValue(a); }
class Solver : public ClauseSink {
 public:
  Solver();
  ~Solver() override;

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Creates a fresh variable and returns it.
  Var NewVar() override;

  /// Number of variables created so far.
  int NumVars() const override { return static_cast<int>(assigns_.size()); }

  /// Adds a clause (disjunction of literals).  Returns false if the
  /// solver became trivially unsatisfiable (empty clause, or conflict
  /// at decision level 0).  Literals over unseen variables are invalid.
  bool AddClause(std::vector<Lit> lits) override;

  /// Convenience single/double/triple literal overloads.
  bool AddUnit(Lit a) { return AddClause({a}); }
  bool AddBinary(Lit a, Lit b) { return AddClause({a, b}); }
  bool AddTernary(Lit a, Lit b, Lit c) { return AddClause({a, b, c}); }

  /// Top-level (decision level 0) database simplification: removes
  /// clauses satisfied by root assignments and strips falsified
  /// literals.  Called automatically at the start of each Solve; safe
  /// to call manually between solves.
  void SimplifyDb();

  /// Solves the current formula.  Returns kUnsat/kSat, or kUnknown if
  /// the conflict budget (if any) is exhausted.
  SolveStatus Solve();

  /// Solves under the given assumptions (temporary unit literals).
  SolveStatus SolveAssuming(const std::vector<Lit>& assumptions);

  /// After SolveAssuming returned kUnsat: a subset of the assumptions
  /// that is already inconsistent with the clause database (the
  /// "unsat core" over assumptions; empty if the database is
  /// unsatisfiable on its own).
  const std::vector<Lit>& FailedAssumptions() const {
    return failed_assumptions_;
  }

  /// Value of v in the most recent satisfying model.  Only valid after
  /// Solve() returned kSat.
  bool ModelValue(Var v) const {
    ARBITER_DCHECK(v >= 0 && v < static_cast<int>(model_.size()));
    return model_[v] == LBool::kTrue;
  }

  /// True iff the solver has derived top-level unsatisfiability.
  bool InConflict() const { return !ok_; }

  /// Sets a conflict budget for subsequent Solve calls; < 0 disables.
  void SetConflictBudget(int64_t conflicts) { conflict_budget_ = conflicts; }

  const SolverStats& stats() const { return stats_; }

  /// Number of problem (non-learnt) clauses currently held.
  int NumProblemClauses() const { return num_problem_clauses_; }
  /// Number of learnt clauses currently held.
  int NumLearntClauses() const { return num_learnt_clauses_; }

 private:
  struct Watcher {
    Clause* clause;
    Lit blocker;
  };

  // --- assignment & trail ---
  LBool Value(Var v) const { return assigns_[v]; }
  LBool Value(Lit l) const { return LitValue(assigns_[l.var()], l.negated()); }
  int DecisionLevel() const { return static_cast<int>(trail_lim_.size()); }
  void UncheckedEnqueue(Lit l, Clause* reason);
  Clause* Propagate();
  void CancelUntil(int level);

  // --- conflict analysis ---
  void Analyze(Clause* conflict, std::vector<Lit>* out_learnt,
               int* out_btlevel);
  bool LitRedundant(Lit l, uint32_t abstract_levels);
  void AnalyzeFinal(Lit p, std::vector<Lit>* out_conflict);

  // --- decision heuristics ---
  void VarBumpActivity(Var v);
  void VarDecayActivity();
  void ClauseBumpActivity(Clause* c);
  void ClauseDecayActivity();
  Lit PickBranchLit();

  // --- order heap (max-heap on activity) ---
  void HeapInsert(Var v);
  void HeapUpdate(Var v);
  Var HeapRemoveMax();
  bool HeapEmpty() const { return heap_.empty(); }
  void HeapPercolateUp(int i);
  void HeapPercolateDown(int i);
  bool HeapContains(Var v) const { return heap_index_[v] >= 0; }

  // --- clause management ---
  Clause* AllocClause(std::vector<Lit> lits, bool learnt);
  void AttachClause(Clause* c);
  void DetachClause(Clause* c);
  void RemoveClause(Clause* c);
  void ReduceDB();
  bool Satisfied(const Clause& c) const;

  // --- search ---
  SolveStatus Search(int64_t max_conflicts);
  static double LubySequence(double y, int i);

  bool ok_ = true;

  std::vector<std::unique_ptr<Clause>> clauses_;  // owns all clauses
  int num_problem_clauses_ = 0;
  int num_learnt_clauses_ = 0;

  std::vector<std::vector<Watcher>> watches_;  // indexed by lit code
  std::vector<LBool> assigns_;                 // indexed by var
  std::vector<bool> polarity_;                 // saved phase, per var
  std::vector<Clause*> reason_;                // per var
  std::vector<int> level_;                     // per var
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  int qhead_ = 0;

  std::vector<double> activity_;  // per var
  double var_inc_ = 1.0;
  double var_decay_ = 0.95;
  double clause_inc_ = 1.0;
  double clause_decay_ = 0.999;

  std::vector<Var> heap_;        // binary max-heap of vars
  std::vector<int> heap_index_;  // var -> heap position or -1

  std::vector<Lit> assumptions_;
  std::vector<Lit> failed_assumptions_;
  std::vector<LBool> model_;

  // Scratch for Analyze.
  std::vector<bool> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_toclear_;

  int64_t conflict_budget_ = -1;
  double max_learnts_factor_ = 1.0 / 3.0;
  double learnt_growth_ = 1.1;

  SolverStats stats_;
};

}  // namespace arbiter::sat

#endif  // ARBITER_SAT_SOLVER_H_
