#include "model/distance.h"

#include <algorithm>

#include "util/logging.h"

namespace arbiter {

int MinDist(const ModelSet& psi, uint64_t interpretation) {
  ARBITER_CHECK_MSG(!psi.empty(), "MinDist over empty model set");
  int best = psi.num_terms() + 1;
  for (uint64_t j : psi) {
    best = std::min(best, Dist(interpretation, j));
    if (best == 0) break;
  }
  return best;
}

int OverallDist(const ModelSet& psi, uint64_t interpretation) {
  ARBITER_CHECK_MSG(!psi.empty(), "OverallDist over empty model set");
  int worst = -1;
  for (uint64_t j : psi) {
    worst = std::max(worst, Dist(interpretation, j));
  }
  return worst;
}

int64_t SumDist(const ModelSet& psi, uint64_t interpretation) {
  int64_t total = 0;
  for (uint64_t j : psi) {
    total += Dist(interpretation, j);
  }
  return total;
}

}  // namespace arbiter
