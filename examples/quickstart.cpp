// Quickstart: the jury scenario from the paper's introduction.
//
// A jury hears witnesses and must change its theory of the crime.  The
// right change operator depends on how the new testimony relates to
// what the jury already believes:
//
//  * revision  — the new witness is MORE reliable (AGM/KM R1-R6);
//  * update    — the new witness reports a LATER state (KM U1-U8);
//  * arbitration — the witnesses are equal voices (Revesz, PODS'93).
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/arbiter.h"
#include "logic/printer.h"

int main() {
  using arbiter::Arbiter;
  using arbiter::KnowledgeBase;

  // Propositions: g = "defendant owned a gun",
  //               a = "defendant was at the scene",
  //               v = "defendant was violent that night".
  Arbiter arb({"g", "a", "v"});
  const arbiter::Vocabulary& vocab = arb.vocabulary();

  KnowledgeBase jury = *arb.ParseKb("g & a & (g & a -> v)");
  KnowledgeBase witness = *arb.ParseKb("!v");

  std::printf("jury's theory:     %s\n", jury.ToString(vocab).c_str());
  std::printf("  models: %s\n", jury.models().ToString(vocab).c_str());
  std::printf("new testimony:     %s\n\n", witness.ToString(vocab).c_str());

  // 1. The witness outranks the jury's theory: revise.
  KnowledgeBase revised = arb.Revise(jury, witness);
  std::printf("revision (Dalal):       %s\n",
              revised.models().ToString(vocab).c_str());

  // 2. The witness describes the situation after things changed: update.
  KnowledgeBase updated = arb.Update(jury, witness);
  std::printf("update (Winslett):      %s\n",
              updated.models().ToString(vocab).c_str());

  // 3. The witness is one voice among equals: arbitrate.
  KnowledgeBase arbitrated = arb.Arbitrate(jury, witness);
  std::printf("arbitration (Revesz):   %s\n",
              arbitrated.models().ToString(vocab).c_str());

  // Arbitration is the only commutative change: swapping the roles of
  // old and new information gives the same verdict.
  KnowledgeBase swapped = arb.Arbitrate(witness, jury);
  std::printf("arbitration (swapped):  %s  (same: %s)\n",
              swapped.models().ToString(vocab).c_str(),
              swapped.EquivalentTo(arbitrated) ? "yes" : "no");
  return 0;
}
