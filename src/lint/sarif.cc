#include "lint/sarif.h"

#include <map>

#include "lint/lint.h"
#include "util/version.h"

namespace arbiter::lint {

namespace {

const char* SarifLevel(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "none";
}

std::string Quoted(const std::string& s) {
  return "\"" + JsonEscape(s) + "\"";
}

}  // namespace

std::string RenderSarif(const std::vector<Diagnostic>& diagnostics) {
  const std::vector<CheckInfo>& checks = AllChecks();
  std::map<std::string, size_t> rule_index;
  for (size_t i = 0; i < checks.size(); ++i) {
    rule_index[checks[i].id] = i;
  }

  std::string out;
  out += "{\n";
  out +=
      "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out += "  \"version\": \"2.1.0\",\n";
  out += "  \"runs\": [\n";
  out += "    {\n";
  out += "      \"tool\": {\n";
  out += "        \"driver\": {\n";
  out += "          \"name\": \"arblint\",\n";
  out += "          \"version\": " + Quoted(kArblintVersion) + ",\n";
  out += "          \"informationUri\": "
         "\"https://github.com/arbiter/arbiter\",\n";
  out += "          \"properties\": {\"solver\": " + Quoted(kSolverVersion) +
         "},\n";
  out += "          \"rules\": [\n";
  for (size_t i = 0; i < checks.size(); ++i) {
    out += "            {\"id\": " + Quoted(checks[i].id) +
           ", \"shortDescription\": {\"text\": " +
           Quoted(checks[i].summary) +
           "}, \"defaultConfiguration\": {\"level\": \"" +
           SarifLevel(checks[i].severity) + "\"}}";
    out += i + 1 < checks.size() ? ",\n" : "\n";
  }
  out += "          ]\n";
  out += "        }\n";
  out += "      },\n";
  out += "      \"results\": [\n";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    out += "        {\n";
    out += "          \"ruleId\": " + Quoted(d.check_id) + ",\n";
    auto it = rule_index.find(d.check_id);
    if (it != rule_index.end()) {
      out += "          \"ruleIndex\": " + std::to_string(it->second) +
             ",\n";
    }
    out += std::string("          \"level\": \"") + SarifLevel(d.severity) +
           "\",\n";
    std::string text = d.message;
    if (!d.note.empty()) text += " (" + d.note + ")";
    out += "          \"message\": {\"text\": " + Quoted(text) + "},\n";
    out += "          \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": " +
           Quoted(d.file) +
           "}, \"region\": {\"startLine\": " +
           std::to_string(d.line < 1 ? 1 : d.line) +
           ", \"startColumn\": " + std::to_string(d.col < 1 ? 1 : d.col) +
           "}}}]";
    if (!d.fixits.empty()) {
      out += ",\n          \"fixes\": [{\"description\": {\"text\": "
             "\"apply arblint fix-it\"}, \"artifactChanges\": "
             "[{\"artifactLocation\": {\"uri\": " +
             Quoted(d.file) + "}, \"replacements\": [";
      for (size_t j = 0; j < d.fixits.size(); ++j) {
        const FixIt& f = d.fixits[j];
        if (j > 0) out += ", ";
        out += "{\"deletedRegion\": {\"charOffset\": " +
               std::to_string(f.offset) +
               ", \"charLength\": " + std::to_string(f.length) +
               "}, \"insertedContent\": {\"text\": " +
               Quoted(f.replacement) + "}}";
      }
      out += "]}]}]";
    }
    if (d.certified != -1) {
      out += ",\n          \"properties\": {\"certified\": ";
      out += d.certified ? "true" : "false";
      out += "}";
    }
    out += "\n        }";
    out += i + 1 < diagnostics.size() ? ",\n" : "\n";
  }
  out += "      ]\n";
  out += "    }\n";
  out += "  ]\n";
  out += "}\n";
  return out;
}

}  // namespace arbiter::lint
