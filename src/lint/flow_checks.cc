#include "lint/flow_checks.h"

#include <algorithm>
#include <optional>

#include "change/registry.h"
#include "lint/cfg.h"
#include "lint/dataflow.h"
#include "lint/emitter.h"
#include "logic/parser.h"
#include "logic/vocabulary.h"
#include "store/script.h"
#include "util/string_util.h"

namespace arbiter::lint {

namespace {

void SetLineRecursive(ScriptStatement* stmt, int line) {
  stmt->line = line;
  for (ScriptStatement& inner : stmt->inner) SetLineRecursive(&inner, line);
}

bool ContainsDefine(const ScriptStatement& stmt) {
  if (stmt.kind == ScriptStatement::Kind::kDefine) return true;
  for (const ScriptStatement& inner : stmt.inner) {
    if (ContainsDefine(inner)) return true;
  }
  return false;
}

bool ContainsUndoOf(const ScriptStatement& stmt, const std::string& base) {
  if (stmt.kind == ScriptStatement::Kind::kUndo && stmt.base == base) {
    return true;
  }
  for (const ScriptStatement& inner : stmt.inner) {
    if (ContainsUndoOf(inner, base)) return true;
  }
  return false;
}

bool ContainsChange(const ScriptStatement& stmt) {
  if (stmt.kind == ScriptStatement::Kind::kChange) return true;
  for (const ScriptStatement& inner : stmt.inner) {
    if (ContainsChange(inner)) return true;
  }
  return false;
}

/// Atom names mentioned by one formula text (empty for unparsable or
/// empty payloads — such text registers nothing when evaluated).
std::set<std::string> FormulaAtoms(const std::string& text) {
  std::set<std::string> atoms;
  if (text.empty()) return atoms;
  Vocabulary vocab;
  if (!Parse(text, &vocab).ok()) return atoms;
  for (const std::string& name : vocab.names()) atoms.insert(name);
  return atoms;
}

/// Every atom a statement (including its nested statements) could
/// register in the store vocabulary if its text were evaluated.
std::set<std::string> EvaluatedAtoms(const ScriptStatement& stmt) {
  std::set<std::string> atoms;
  if (stmt.kind == ScriptStatement::Kind::kSetWeight) {
    atoms.insert(stmt.base);  // the weighted term registers; no formula
  } else if (stmt.kind != ScriptStatement::Kind::kSetBackend) {
    atoms = FormulaAtoms(stmt.formula);
  }
  for (const ScriptStatement& inner : stmt.inner) {
    for (const std::string& atom : EvaluatedAtoms(inner)) atoms.insert(atom);
  }
  return atoms;
}

/// True iff executing this one statement (not its nested inner
/// statements — those are separate CFG nodes) consults `base`'s value.
bool ReadsBase(const ScriptStatement& stmt, const std::string& base) {
  switch (stmt.kind) {
    case ScriptStatement::Kind::kDefine:
    case ScriptStatement::Kind::kSetBackend:
    case ScriptStatement::Kind::kSetWeight:
      return false;
    case ScriptStatement::Kind::kChange:
    case ScriptStatement::Kind::kUndo:
    case ScriptStatement::Kind::kAssertEntails:
    case ScriptStatement::Kind::kAssertConsistent:
    case ScriptStatement::Kind::kAssertEquivalent:
    case ScriptStatement::Kind::kConditional:
      return stmt.base == base;
  }
  return false;
}

/// Byte span of each 1-based source line in the original text.
struct LineSpan {
  size_t offset = 0;   ///< byte offset of the line's first character
  size_t length = 0;   ///< bytes excluding the newline
  bool has_newline = false;
};

std::vector<LineSpan> ComputeLineSpans(const std::string& text) {
  std::vector<LineSpan> spans;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t nl = text.find('\n', start);
    LineSpan span;
    span.offset = start;
    if (nl == std::string::npos) {
      span.length = text.size() - start;
      spans.push_back(span);
      break;
    }
    span.length = nl - start;
    span.has_newline = true;
    spans.push_back(span);
    start = nl + 1;
  }
  return spans;
}

FixIt DeleteLine(const std::vector<LineSpan>& spans, int line) {
  FixIt fix;
  if (line < 1 || line > static_cast<int>(spans.size())) return fix;
  const LineSpan& span = spans[line - 1];
  fix.offset = span.offset;
  fix.length = span.length + (span.has_newline ? 1 : 0);
  return fix;
}

FixIt ReplaceLine(const std::vector<LineSpan>& spans, int line,
                  std::string replacement) {
  FixIt fix;
  if (line < 1 || line > static_cast<int>(spans.size())) return fix;
  const LineSpan& span = spans[line - 1];
  fix.offset = span.offset;
  fix.length = span.length;
  fix.replacement = std::move(replacement);
  return fix;
}

class FlowPass {
 public:
  FlowPass(const std::string& file, const std::string& text,
           const LintOptions& options,
           const std::set<std::pair<int, std::string>>& already_emitted,
           FlowAnalysis* out)
      : text_(text),
        options_(options),
        already_emitted_(already_emitted),
        emit_(file, options, &out->diagnostics),
        out_(out) {}

  void Run() {
    if (!options_.enable_dataflow) return;
    BeliefScript script;
    if (!ParseStatements(&script)) return;
    if (script.statements.empty()) return;

    Vocabulary vocab;
    bool parse_trouble = false;
    for (const ScriptStatement& stmt : script.statements) {
      ResolvePayloads(stmt, &vocab, &parse_trouble);
    }
    // script/capacity (or the counting backend's capacity-backend note)
    // owns large vocabularies; the flow oracle needs 2^n model counts.
    if (vocab.size() > kMaxEnumTerms) return;
    (void)parse_trouble;  // unparsed payloads degrade to kTop per statement

    cfg_ = Cfg::Build(std::move(script));
    // Payload resolution keyed the map by pre-copy statement pointers;
    // re-key against the CFG-owned script (identical shape and order).
    RekeyInfo();

    SemanticOracle oracle(static_cast<int>(vocab.size()),
                          options_.allsat_model_cap);
    if (options_.certify) oracle.EnableCertification();
    ScriptDataflow df(&cfg_, &info_, std::move(oracle));
    df.Run();
    spans_ = ComputeLineSpans(text_);
    IndexVocabularyGrowth();

    const size_t first_flow = out_->diagnostics.size();
    for (int id : cfg_.ReversePostOrder()) {
      const CfgNode& node = cfg_.node(id);
      if (node.kind != CfgNode::Kind::kStatement) continue;
      Statement(df, id);
    }
    DeadDefines(df);

    // Flow verdicts are read off the whole fixpoint, so certification
    // is an aggregate over every UNSAT verdict the oracle produced:
    // if any failed the proof check, every flow finding of this pass
    // is downgraded (the fixpoint they were read from is tainted).
    if (options_.certify) {
      const int certified = df.oracle().all_unsat_certified() ? 1 : 0;
      for (size_t i = first_flow; i < out_->diagnostics.size(); ++i) {
        Diagnostic* d = &out_->diagnostics[i];
        d->certified = certified;
        if (certified == 0) Emitter::Downgrade(d);
      }
    }
    out_->ran = true;
  }

 private:
  bool ParseStatements(BeliefScript* script) {
    const std::vector<std::string> lines = Split(text_, '\n');
    for (size_t i = 0; i < lines.size(); ++i) {
      const std::string line = Trim(lines[i]);
      if (line.empty() || line[0] == '#') continue;
      Result<BeliefScript> one = ParseScript(line);
      // A single bad line keeps the whole script from running, so
      // dataflow claims would be vacuous; the single-statement pass
      // already reported script/syntax.
      if (!one.ok()) return false;
      if (one->statements.empty()) continue;
      ScriptStatement stmt = one->statements[0];
      SetLineRecursive(&stmt, static_cast<int>(i + 1));
      script->statements.push_back(std::move(stmt));
    }
    return true;
  }

  /// Parses payload formulas in source order against the script-wide
  /// vocabulary (mirroring both the runtime store and the
  /// single-statement pass) and resolves operator families.
  void ResolvePayloads(const ScriptStatement& stmt, Vocabulary* vocab,
                       bool* parse_trouble) {
    StatementInfo info;
    // `set` statements carry a backend name or a weight in `formula`,
    // not a formula payload; a weighted term still joins the vocabulary
    // (mirroring the runtime store).
    const bool non_formula_payload =
        stmt.kind == ScriptStatement::Kind::kSetBackend ||
        stmt.kind == ScriptStatement::Kind::kSetWeight;
    if (stmt.kind == ScriptStatement::Kind::kSetWeight) {
      (void)vocab->GetOrAddTerm(stmt.base);
    }
    if (!stmt.formula.empty() && !non_formula_payload) {
      const Vocabulary backup = *vocab;
      Result<Formula> f = Parse(stmt.formula, vocab);
      if (f.ok()) {
        info.payload = *f;
      } else {
        *vocab = backup;
        *parse_trouble = true;
      }
    }
    if (stmt.kind == ScriptStatement::Kind::kChange) {
      Result<std::shared_ptr<const TheoryChangeOperator>> op =
          MakeOperator(stmt.op_name);
      if (op.ok()) info.family = (*op)->family();
    }
    info_by_line_kind_.push_back(std::move(info));
    for (const ScriptStatement& inner : stmt.inner) {
      ResolvePayloads(inner, vocab, parse_trouble);
    }
  }

  void CollectStatements(const ScriptStatement& stmt,
                         std::vector<const ScriptStatement*>* out) {
    out->push_back(&stmt);
    for (const ScriptStatement& inner : stmt.inner) {
      CollectStatements(inner, out);
    }
  }

  void RekeyInfo() {
    std::vector<const ScriptStatement*> order;
    for (const ScriptStatement& stmt : cfg_.script().statements) {
      CollectStatements(stmt, &order);
    }
    ARBITER_CHECK(order.size() == info_by_line_kind_.size());
    for (size_t i = 0; i < order.size(); ++i) {
      info_.emplace(order[i], std::move(info_by_line_kind_[i]));
    }
  }

  bool AlreadyEmitted(int line, const char* check_id) const {
    return already_emitted_.count({line, std::string(check_id)}) > 0;
  }

  /// Per top-level line: the atoms surely registered in the store
  /// vocabulary by the time execution reaches it (payload atoms of
  /// earlier unguarded statements, guard atoms of earlier
  /// conditionals — nested statements may be skipped, so only the
  /// outermost guard counts), plus the lines that apply an operator.
  void IndexVocabularyGrowth() {
    std::set<std::string> registered;
    for (const ScriptStatement& top : cfg_.script().statements) {
      registered_before_[top.line] = registered;
      for (const std::string& atom : FormulaAtoms(top.formula)) {
        registered.insert(atom);
      }
      if (ContainsChange(top)) change_lines_.push_back(top.line);
    }
  }

  /// The change operators do not commute with vocabulary growth (see
  /// belief_store.h), and evaluating a line registers its formulas'
  /// atoms even when the guarded statement is skipped.  A fix-it that
  /// removes evaluated text is offered only when it cannot shift the
  /// vocabulary seen by any operator application: either every removed
  /// atom is already registered by an earlier top-level statement, or
  /// no change statement runs at a later line (entailment,
  /// consistency, and model-count queries are invariant under
  /// vocabulary growth; Apply is not).  `line_survives` covers guard
  /// unwraps, where the inner statement keeps executing on its line.
  bool RemovalPreservesVocabulary(const std::set<std::string>& removed,
                                  int line, bool line_survives) const {
    const auto it = registered_before_.find(line);
    bool all_registered = it != registered_before_.end();
    for (const std::string& atom : removed) {
      if (!all_registered || it->second.count(atom) == 0) {
        all_registered = false;
        break;
      }
    }
    if (all_registered) return true;
    for (const int change_line : change_lines_) {
      if (change_line > line || (line_survives && change_line == line)) {
        return false;
      }
    }
    return true;
  }

  void Verdict(FlowVerdict::Kind kind, const ScriptStatement& stmt) {
    FlowVerdict v;
    v.kind = kind;
    v.line = stmt.line;
    v.base = stmt.base;
    v.statement = RenderStatement(stmt);
    out_->verdicts.push_back(std::move(v));
  }

  const ScriptStatement& TopLevelOf(const CfgNode& node) const {
    return cfg_.script().statements[node.top_level];
  }

  void Statement(const ScriptDataflow& df, int id) {
    const CfgNode& node = cfg_.node(id);
    const ScriptStatement& stmt = *node.stmt;
    const AbstractState& in = df.InState(id);

    if (!in.reachable) {
      // Flag only the first statement of a dead chain; the rest are
      // consequences.
      bool frontier = false;
      for (int pred : node.preds) {
        if (df.InState(pred).reachable) frontier = true;
      }
      if (!frontier) return;
      Verdict(FlowVerdict::Kind::kUnreachable, stmt);
      std::vector<FixIt> fixits;
      if (!ContainsDefine(TopLevelOf(node)) &&
          RemovalPreservesVocabulary(EvaluatedAtoms(TopLevelOf(node)),
                                     stmt.line, /*line_survives=*/false)) {
        fixits.push_back(DeleteLine(spans_, stmt.line));
      }
      emit_.Emit("flow/unreachable", stmt.line, 1,
                 "'" + RenderStatement(stmt) +
                     "' provably never executes",
                 "on every path reaching this line, the enclosing "
                 "guard's outcome is already decided",
                 std::move(fixits));
      return;
    }

    const StatementInfo& info = df.InfoFor(node.stmt);
    auto it = in.bases.find(stmt.base);
    const AbstractBase* v = it == in.bases.end() ? nullptr : &it->second;

    switch (stmt.kind) {
      case ScriptStatement::Kind::kUndo:
        if (v != nullptr && v->surely_defined && v->depth.hi == 0) {
          Verdict(FlowVerdict::Kind::kUndoEmpty, stmt);
          if (!AlreadyEmitted(stmt.line, "script/undo-empty")) {
            std::vector<FixIt> fixits;
            if (RemovalPreservesVocabulary(EvaluatedAtoms(TopLevelOf(node)),
                                           stmt.line,
                                           /*line_survives=*/false)) {
              fixits.push_back(DeleteLine(spans_, stmt.line));
            }
            emit_.Emit("flow/undo-empty", stmt.line, 1,
                       "'" + stmt.base + "' has an empty history on "
                       "every path reaching this undo",
                       "the run would stop here with a hard error",
                       std::move(fixits));
          }
        }
        return;
      case ScriptStatement::Kind::kChange:
        RedundantChange(df, node, stmt, info, v);
        return;
      case ScriptStatement::Kind::kAssertEntails:
      case ScriptStatement::Kind::kAssertConsistent:
      case ScriptStatement::Kind::kAssertEquivalent:
        AssertVerdicts(df, stmt, info, v);
        return;
      case ScriptStatement::Kind::kConditional:
        GuardUnwrap(df, node, stmt, info, v);
        return;
      case ScriptStatement::Kind::kDefine:
        return;  // dead defines need the backward pass
      case ScriptStatement::Kind::kSetBackend:
      case ScriptStatement::Kind::kSetWeight:
        return;  // no per-base verdicts; capacity lives in the linter
    }
  }

  void RedundantChange(const ScriptDataflow& df, const CfgNode& node,
                       const ScriptStatement& stmt,
                       const StatementInfo& info, const AbstractBase* v) {
    if (v == nullptr || !v->surely_defined || !info.payload ||
        !info.family) {
      return;
    }
    const bool identity_family = *info.family == OperatorFamily::kRevision ||
                                 *info.family == OperatorFamily::kUpdate;
    // Model fitting and arbitration stay loyal to all models of the
    // base and move even on entailed evidence (Example 3.1).
    if (!identity_family) return;
    const SemanticOracle& o = df.oracle();
    if (v->sat != SatLattice::kSat || !o.Sat(*info.payload)) return;
    if (!ProvesEntails(o, *v, *info.payload)) return;
    Verdict(FlowVerdict::Kind::kRedundantChange, stmt);
    if (AlreadyEmitted(stmt.line, "script/vacuous-change")) return;
    std::vector<FixIt> fixits;
    bool undone_later = false;
    for (const ScriptStatement& top : cfg_.script().statements) {
      if (ContainsUndoOf(top, stmt.base)) undone_later = true;
    }
    if (!undone_later &&
        RemovalPreservesVocabulary(EvaluatedAtoms(TopLevelOf(node)),
                                   stmt.line, /*line_survives=*/false)) {
      fixits.push_back(DeleteLine(spans_, stmt.line));
    }
    emit_.Emit("flow/redundant-change", stmt.line, 1,
               "on every path reaching this line '" + stmt.base +
                   "' already entails the evidence; this " +
                   std::string(OperatorFamilyName(*info.family)) +
                   " is a no-op",
               "(R2)/(U2) applied path-sensitively: the guard facts on "
               "every incoming branch already force the evidence",
               std::move(fixits));
  }

  void AssertVerdicts(const ScriptDataflow& df, const ScriptStatement& stmt,
                      const StatementInfo& info, const AbstractBase* v) {
    if (v == nullptr || !v->surely_defined || !info.payload) return;
    const SemanticOracle& o = df.oracle();
    const Formula& f = *info.payload;
    bool passes = false;
    bool fails = false;
    if (stmt.kind == ScriptStatement::Kind::kAssertEntails) {
      passes = ProvesEntails(o, *v, f);
      fails = !passes && ProvesNotEntails(o, *v, f);
    } else if (stmt.kind == ScriptStatement::Kind::kAssertConsistent) {
      if (v->exact) {
        passes = o.Sat(And(*v->exact, f));
        fails = !passes;
      } else if (v->sat == SatLattice::kUnsat || !o.Sat(f)) {
        fails = true;
      } else if (!v->facts.empty()) {
        // b entails its facts on every path, so facts ∧ f unsat means
        // b ∧ f unsat on every path.
        std::vector<Formula> parts = v->facts;
        parts.push_back(f);
        fails = !o.Sat(And(parts));
      }
    } else {  // kAssertEquivalent
      if (v->exact) {
        passes = !o.Sat(Xor(*v->exact, f));
        fails = !passes;
      } else {
        const bool f_sat = o.Sat(f);
        if (v->sat == SatLattice::kUnsat) {
          passes = !f_sat;
          fails = f_sat;
        } else if (v->sat == SatLattice::kSat && !f_sat) {
          fails = true;
        } else if (!v->facts.empty() && !o.Entails(f, And(v->facts))) {
          // b entails its facts; an equivalent formula would too.
          fails = true;
        } else {
          // Model-count interval: equivalent formulas have the same
          // number of models over the shared vocabulary.
          int64_t lo = 0;
          int64_t hi = 0;
          o.CountModels(f, &lo, &hi);
          fails = lo == hi && (lo < v->models_lo || lo > v->models_hi);
        }
      }
    }
    if (!passes && !fails) return;
    Verdict(passes ? FlowVerdict::Kind::kAssertPasses
                   : FlowVerdict::Kind::kAssertFails,
            stmt);
    if (AlreadyEmitted(stmt.line, "script/trivial-assert")) return;
    if (passes) {
      emit_.Emit("flow/assert-passes", stmt.line, 1,
                 "assertion provably holds on every path reaching it",
                 "the abstract state already decides this assertion; "
                 "it cannot catch a regression");
    } else {
      emit_.Emit("flow/assert-fails", stmt.line, 1,
                 "assertion provably fails on every path reaching it",
                 "every execution that reaches this line records a "
                 "failed assertion");
    }
  }

  void GuardUnwrap(const ScriptDataflow& df, const CfgNode& node,
                   const ScriptStatement& stmt, const StatementInfo& info,
                   const AbstractBase* v) {
    // Unwrap `if b entails ⊤-equivalent then S` to plain `S`: only for
    // top-level conditionals (the fix-it rewrites the whole line) on a
    // surely-defined base (the runtime guard would hard-error on an
    // undefined one, so unwrapping must not change that).
    if (node.stmt != &TopLevelOf(node)) return;
    if (stmt.inner.empty() || !info.payload) return;
    if (v == nullptr || !v->surely_defined) return;
    if (!df.oracle().Taut(*info.payload)) return;
    // Unwrapping removes the guard's evaluation but keeps the inner
    // statement running on this line.
    if (!RemovalPreservesVocabulary(FormulaAtoms(stmt.formula), stmt.line,
                                    /*line_survives=*/true)) {
      return;
    }
    out_->guard_unwraps.emplace(
        stmt.line,
        ReplaceLine(spans_, stmt.line, RenderStatement(stmt.inner[0])));
  }

  void DeadDefines(const ScriptDataflow& df) {
    // Which bases have define nodes at all.
    std::set<std::string> defined_bases;
    for (const CfgNode& node : cfg_.nodes()) {
      if (node.kind == CfgNode::Kind::kStatement &&
          node.stmt->kind == ScriptStatement::Kind::kDefine) {
        defined_bases.insert(node.stmt->base);
      }
    }
    const std::vector<int>& rpo = cfg_.ReversePostOrder();
    for (const std::string& base : defined_bases) {
      // reads_first[n]: some graph path from n reads `base` before any
      // redefine.  Computed bottom-up (post order visits successors
      // first on the DAG).
      std::vector<char> reads_first(cfg_.num_nodes(), 0);
      for (auto it = rpo.rbegin(); it != rpo.rend(); ++it) {
        const CfgNode& node = cfg_.node(*it);
        if (node.kind == CfgNode::Kind::kStatement) {
          if (ReadsBase(*node.stmt, base)) {
            reads_first[*it] = 1;
            continue;
          }
          if (node.stmt->kind == ScriptStatement::Kind::kDefine &&
              node.stmt->base == base) {
            reads_first[*it] = 0;
            continue;
          }
        }
        for (int succ : node.succs) {
          if (reads_first[succ]) reads_first[*it] = 1;
        }
      }
      for (int id : rpo) {
        const CfgNode& node = cfg_.node(id);
        if (node.kind != CfgNode::Kind::kStatement ||
            node.stmt->kind != ScriptStatement::Kind::kDefine ||
            node.stmt->base != base) {
          continue;
        }
        if (!df.InState(id).reachable) continue;
        if (reads_first[node.succs[0]]) continue;
        const ScriptStatement& stmt = *node.stmt;
        Verdict(FlowVerdict::Kind::kDeadDefine, stmt);
        std::vector<FixIt> fixits;
        const ScriptStatement& top =
            cfg_.script().statements[node.top_level];
        if (RemovalPreservesVocabulary(EvaluatedAtoms(top), stmt.line,
                                       /*line_survives=*/false)) {
          fixits.push_back(DeleteLine(spans_, stmt.line));
        }
        emit_.Emit("flow/dead-define", stmt.line, 1,
                   "the value defined for '" + stmt.base +
                       "' is never read before it is redefined or the "
                       "script ends",
                   "no change, undo, assert, or guard consults it on "
                   "any path",
                   std::move(fixits));
      }
    }
  }

  const std::string& text_;
  const LintOptions& options_;
  const std::set<std::pair<int, std::string>>& already_emitted_;
  Emitter emit_;
  FlowAnalysis* out_;
  Cfg cfg_ = Cfg::Build(BeliefScript{});
  /// Statement info in pre-order collection order, before re-keying.
  std::vector<StatementInfo> info_by_line_kind_;
  std::map<const ScriptStatement*, StatementInfo> info_;
  std::vector<LineSpan> spans_;
  /// Top-level line -> atoms surely registered before that line runs.
  std::map<int, std::set<std::string>> registered_before_;
  /// Lines (sorted) holding a change statement at any nesting depth.
  std::vector<int> change_lines_;
};

}  // namespace

FlowAnalysis AnalyzeScriptFlow(
    const std::string& file, const std::string& text,
    const LintOptions& options,
    const std::set<std::pair<int, std::string>>& already_emitted) {
  FlowAnalysis out;
  FlowPass pass(file, text, options, already_emitted, &out);
  pass.Run();
  return out;
}

}  // namespace arbiter::lint
