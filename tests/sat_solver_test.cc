// Tests for the CDCL SAT solver: unit behaviour, known instances,
// assumptions, and differential testing against both the DPLL baseline
// and brute-force truth tables.

#include "sat/solver.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "logic/eval.h"
#include "logic/generator.h"
#include "logic/semantics.h"
#include "sat/dpll.h"
#include "util/random.h"

namespace arbiter::sat {
namespace {

TEST(SolverTest, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.Solve(), SolveStatus::kSat);
}

TEST(SolverTest, SingleUnit) {
  Solver s;
  Var a = s.NewVar();
  ASSERT_TRUE(s.AddUnit(Lit::Pos(a)));
  ASSERT_EQ(s.Solve(), SolveStatus::kSat);
  EXPECT_TRUE(s.ModelValue(a));
}

TEST(SolverTest, ContradictoryUnitsAreUnsat) {
  Solver s;
  Var a = s.NewVar();
  EXPECT_TRUE(s.AddUnit(Lit::Pos(a)));
  EXPECT_FALSE(s.AddUnit(Lit::Neg(a)));
  EXPECT_EQ(s.Solve(), SolveStatus::kUnsat);
}

TEST(SolverTest, EmptyClauseIsUnsat) {
  Solver s;
  s.NewVar();
  EXPECT_FALSE(s.AddClause({}));
  EXPECT_EQ(s.Solve(), SolveStatus::kUnsat);
}

TEST(SolverTest, TautologicalClauseIsDropped) {
  Solver s;
  Var a = s.NewVar();
  EXPECT_TRUE(s.AddBinary(Lit::Pos(a), Lit::Neg(a)));
  EXPECT_EQ(s.NumProblemClauses(), 0);
  EXPECT_EQ(s.Solve(), SolveStatus::kSat);
}

TEST(SolverTest, DuplicateLiteralsCollapse) {
  Solver s;
  Var a = s.NewVar();
  EXPECT_TRUE(s.AddClause({Lit::Pos(a), Lit::Pos(a), Lit::Pos(a)}));
  ASSERT_EQ(s.Solve(), SolveStatus::kSat);
  EXPECT_TRUE(s.ModelValue(a));
}

TEST(SolverTest, SimpleImplicationChain) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 20; ++i) v.push_back(s.NewVar());
  // v0 and (v_i -> v_{i+1}) force everything true.
  ASSERT_TRUE(s.AddUnit(Lit::Pos(v[0])));
  for (int i = 0; i + 1 < 20; ++i) {
    ASSERT_TRUE(s.AddBinary(Lit::Neg(v[i]), Lit::Pos(v[i + 1])));
  }
  ASSERT_EQ(s.Solve(), SolveStatus::kSat);
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(s.ModelValue(v[i]));
}

TEST(SolverTest, XorChainUnsat) {
  // x1 xor x2, x2 xor x3, ..., plus x1 = x_n forced unequal: UNSAT for
  // odd cycles.
  Solver s;
  const int n = 7;
  std::vector<Var> v;
  for (int i = 0; i < n; ++i) v.push_back(s.NewVar());
  for (int i = 0; i < n; ++i) {
    Var a = v[i];
    Var b = v[(i + 1) % n];
    // a xor b: (a | b) & (!a | !b)
    ASSERT_TRUE(s.AddBinary(Lit::Pos(a), Lit::Pos(b)));
    s.AddBinary(Lit::Neg(a), Lit::Neg(b));
  }
  EXPECT_EQ(s.Solve(), SolveStatus::kUnsat);
}

// Loads the clauses of a CNF formula AST into the solver (variables
// must already exist).
void LoadFormulaClauses(const Formula& f, Solver* solver) {
  auto add_clause = [&](const Formula& clause) {
    std::vector<Lit> lits;
    const std::vector<Formula> singleton = {clause};
    const std::vector<Formula>& parts =
        clause.kind() == FormulaKind::kOr ? clause.children() : singleton;
    for (const Formula& lit : parts) {
      if (lit.is_var()) {
        lits.push_back(Lit::Pos(lit.var()));
      } else {
        lits.push_back(Lit::Neg(lit.child(0).var()));
      }
    }
    solver->AddClause(lits);
  };
  if (f.kind() == FormulaKind::kAnd) {
    for (const Formula& clause : f.children()) add_clause(clause);
  } else {
    add_clause(f);
  }
}

// Pigeonhole principle PHP(n+1, n): classic hard UNSAT family.
void AddPigeonhole(Solver* s, int holes) {
  const int pigeons = holes + 1;
  std::vector<std::vector<Var>> in(pigeons, std::vector<Var>(holes));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) in[p][h] = s->NewVar();
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(Lit::Pos(in[p][h]));
    s->AddClause(clause);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s->AddBinary(Lit::Neg(in[p1][h]), Lit::Neg(in[p2][h]));
      }
    }
  }
}

TEST(SolverTest, PigeonholeUnsat) {
  for (int holes = 2; holes <= 6; ++holes) {
    Solver s;
    AddPigeonhole(&s, holes);
    EXPECT_EQ(s.Solve(), SolveStatus::kUnsat) << "holes=" << holes;
    EXPECT_GT(s.stats().conflicts, 0u);
  }
}

TEST(SolverTest, AssumptionsRestrictModels) {
  Solver s;
  Var a = s.NewVar();
  Var b = s.NewVar();
  ASSERT_TRUE(s.AddBinary(Lit::Pos(a), Lit::Pos(b)));
  ASSERT_EQ(s.SolveAssuming({Lit::Neg(a)}), SolveStatus::kSat);
  EXPECT_FALSE(s.ModelValue(a));
  EXPECT_TRUE(s.ModelValue(b));
  // Assumptions are temporary.
  ASSERT_EQ(s.SolveAssuming({Lit::Pos(a)}), SolveStatus::kSat);
  EXPECT_TRUE(s.ModelValue(a));
}

TEST(SolverTest, ConflictingAssumptionsUnsatButRecoverable) {
  Solver s;
  Var a = s.NewVar();
  Var b = s.NewVar();
  ASSERT_TRUE(s.AddBinary(Lit::Neg(a), Lit::Pos(b)));
  EXPECT_EQ(s.SolveAssuming({Lit::Pos(a), Lit::Neg(b)}),
            SolveStatus::kUnsat);
  EXPECT_EQ(s.Solve(), SolveStatus::kSat);  // formula itself is fine
}

// Differential test fixture: random k-CNF instances are solved by CDCL,
// DPLL, and brute-force enumeration; all three must agree, and SAT
// models must actually satisfy the formula.
struct DiffParams {
  int num_vars;
  int num_clauses;
  int k;
};

class SolverDifferentialTest : public ::testing::TestWithParam<DiffParams> {};

TEST_P(SolverDifferentialTest, AgreesWithDpllAndBruteForce) {
  const DiffParams p = GetParam();
  Rng rng(0xC0FFEE ^ (p.num_vars * 131 + p.num_clauses * 7 + p.k));
  for (int round = 0; round < 40; ++round) {
    Formula f = RandomKCnf(&rng, p.num_vars, p.num_clauses, p.k);
    const bool brute = IsSatisfiable(f, p.num_vars);

    // CDCL via direct clause loading (f is a conjunction of clauses).
    Solver cdcl;
    DpllSolver dpll(p.num_vars);
    for (int i = 0; i < p.num_vars; ++i) cdcl.NewVar();
    auto add_clause = [&](const Formula& clause) {
      std::vector<Lit> lits;
      const std::vector<Formula> singleton = {clause};
      const std::vector<Formula>& parts =
          clause.kind() == FormulaKind::kOr ? clause.children() : singleton;
      for (const Formula& lit : parts) {
        if (lit.is_var()) {
          lits.push_back(Lit::Pos(lit.var()));
        } else {
          lits.push_back(Lit::Neg(lit.child(0).var()));
        }
      }
      cdcl.AddClause(lits);
      dpll.AddClause(lits);
    };
    if (f.kind() == FormulaKind::kAnd) {
      for (const Formula& clause : f.children()) add_clause(clause);
    } else {
      add_clause(f);
    }

    SolveStatus cdcl_status = cdcl.Solve();
    SolveStatus dpll_status = dpll.Solve();
    EXPECT_EQ(cdcl_status == SolveStatus::kSat, brute)
        << "CDCL disagrees with brute force, round " << round;
    EXPECT_EQ(dpll_status == SolveStatus::kSat, brute)
        << "DPLL disagrees with brute force, round " << round;
    if (cdcl_status == SolveStatus::kSat) {
      uint64_t bits = 0;
      for (int i = 0; i < p.num_vars; ++i) {
        if (cdcl.ModelValue(i)) bits |= 1ULL << i;
      }
      EXPECT_TRUE(Evaluate(f, bits)) << "CDCL model does not satisfy";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomKCnf, SolverDifferentialTest,
    ::testing::Values(DiffParams{4, 8, 2}, DiffParams{6, 15, 3},
                      DiffParams{8, 34, 3},   // near phase transition
                      DiffParams{8, 20, 3}, DiffParams{10, 43, 3},
                      DiffParams{10, 60, 3},  // over-constrained
                      DiffParams{12, 30, 4}, DiffParams{5, 30, 2}));

TEST(SolverTest, StatsAccumulate) {
  Solver s;
  AddPigeonhole(&s, 5);
  ASSERT_EQ(s.Solve(), SolveStatus::kUnsat);
  EXPECT_GT(s.stats().decisions, 0u);
  EXPECT_GT(s.stats().propagations, 0u);
  EXPECT_GT(s.stats().learnt_clauses, 0u);
}

TEST(SolverTest, FailedAssumptionsFormACore) {
  // (a -> b), assume {a, !b}: the two assumptions clash through the
  // clause; the core must contain both and nothing else.
  Solver s;
  Var a = s.NewVar();
  Var b = s.NewVar();
  Var c = s.NewVar();
  ASSERT_TRUE(s.AddBinary(Lit::Neg(a), Lit::Pos(b)));
  ASSERT_EQ(s.SolveAssuming({Lit::Pos(c), Lit::Pos(a), Lit::Neg(b)}),
            SolveStatus::kUnsat);
  std::vector<Lit> core = s.FailedAssumptions();
  std::sort(core.begin(), core.end());
  EXPECT_EQ(core, (std::vector<Lit>{Lit::Pos(a), Lit::Neg(b)}))
      << "the irrelevant assumption c must not appear";
}

TEST(SolverTest, FailedAssumptionsAgainstRootUnit) {
  Solver s;
  Var a = s.NewVar();
  ASSERT_TRUE(s.AddUnit(Lit::Neg(a)));
  ASSERT_EQ(s.SolveAssuming({Lit::Pos(a)}), SolveStatus::kUnsat);
  EXPECT_EQ(s.FailedAssumptions(), std::vector<Lit>{Lit::Pos(a)});
}

TEST(SolverTest, FailedAssumptionsClearOnSat) {
  Solver s;
  Var a = s.NewVar();
  ASSERT_TRUE(s.AddUnit(Lit::Neg(a)));
  ASSERT_EQ(s.SolveAssuming({Lit::Pos(a)}), SolveStatus::kUnsat);
  EXPECT_FALSE(s.FailedAssumptions().empty());
  ASSERT_EQ(s.SolveAssuming({Lit::Neg(a)}), SolveStatus::kSat);
  EXPECT_TRUE(s.FailedAssumptions().empty());
}

TEST(SolverTest, SimplifyDbRemovesRootSatisfiedClauses) {
  Solver s;
  Var a = s.NewVar();
  Var b = s.NewVar();
  Var c = s.NewVar();
  // Clauses enter first; the unit arrives afterwards (the incremental
  // pattern), so they are stored and only later become satisfied.
  ASSERT_TRUE(s.AddTernary(Lit::Pos(a), Lit::Pos(b), Lit::Pos(c)));
  ASSERT_TRUE(s.AddTernary(Lit::Neg(a), Lit::Pos(b), Lit::Pos(c)));
  ASSERT_TRUE(s.AddUnit(Lit::Pos(a)));
  int before = s.NumProblemClauses();
  EXPECT_EQ(before, 2);
  s.SimplifyDb();
  EXPECT_LT(s.NumProblemClauses(), before);
  ASSERT_EQ(s.Solve(), SolveStatus::kSat);
  EXPECT_TRUE(s.ModelValue(a));
  EXPECT_TRUE(s.ModelValue(b) || s.ModelValue(c));
}

TEST(SolverTest, SimplifyDbPreservesSemantics) {
  // Incremental use: solve, add units, simplify, solve again — results
  // must match a fresh solver on the combined formula.
  Rng rng(0x51u);
  for (int round = 0; round < 40; ++round) {
    const int n = 6;
    Formula f = RandomKCnf(&rng, n, 14, 3);
    Var unit_var = static_cast<Var>(rng.NextBelow(n));
    bool unit_sign = rng.NextBool();

    Solver incremental;
    for (int i = 0; i < n; ++i) incremental.NewVar();
    LoadFormulaClauses(f, &incremental);
    incremental.Solve();
    incremental.AddUnit(Lit(unit_var, unit_sign));
    incremental.SimplifyDb();
    SolveStatus got = incremental.Solve();

    Formula combined =
        And(f, unit_sign ? Not(Formula::Var(unit_var))
                         : Formula::Var(unit_var));
    EXPECT_EQ(got == SolveStatus::kSat, IsSatisfiable(combined, n))
        << "round " << round;
  }
}

TEST(SolverTest, ConflictBudgetReturnsUnknown) {
  Solver s;
  AddPigeonhole(&s, 9);  // too hard for a tiny budget
  s.SetConflictBudget(10);
  EXPECT_EQ(s.Solve(), SolveStatus::kUnknown);
}

}  // namespace
}  // namespace arbiter::sat
