#ifndef ARBITER_CHANGE_PROPERTIES_H_
#define ARBITER_CHANGE_PROPERTIES_H_

#include <optional>
#include <string>

#include "change/operator.h"

/// \file properties.h
/// Exhaustive structural properties of theory change operators beyond
/// the postulate families — in particular *monotony*, which carries
/// the paper's Section 3 argument: Katsuno–Mendelzon observed that all
/// update operators are monotone while Gärdenfors' impossibility
/// theorem shows no non-trivial revision operator can be, giving
/// revision ∩ update = ∅.  These checkers make that argument
/// executable.
///
/// All checks are exhaustive over every knowledge-base tuple of an
/// n-term vocabulary (n <= 3).

namespace arbiter {

/// A failed property instance, rendered for diagnostics.
struct PropertyCounterexample {
  std::string property;
  std::string description;
};

/// Monotony (in the knowledge base): ψ ⊨ ψ' implies ψ * μ ⊨ ψ' * μ.
std::optional<PropertyCounterexample> CheckMonotone(
    const TheoryChangeOperator& op, int num_terms);

/// Idempotence of incorporation: (ψ * μ) * μ ≡ ψ * μ.
std::optional<PropertyCounterexample> CheckIdempotent(
    const TheoryChangeOperator& op, int num_terms);

/// Commutativity: ψ * φ ≡ φ * ψ.
std::optional<PropertyCounterexample> CheckCommutative(
    const TheoryChangeOperator& op, int num_terms);

/// Associativity: (a * b) * c ≡ a * (b * c).  Arbitration famously
/// lacks it — the order in which voices are merged matters, which is
/// why k-ary merging (merge.h) is not just iterated Δ.
std::optional<PropertyCounterexample> CheckAssociative(
    const TheoryChangeOperator& op, int num_terms);

/// Success: ψ * μ ⊨ μ (axiom (R1)/(U1)/(A1) as a standalone property).
std::optional<PropertyCounterexample> CheckSuccess(
    const TheoryChangeOperator& op, int num_terms);

/// Vacuity: if ψ ∧ μ is satisfiable then ψ * μ ≡ ψ ∧ μ (axiom (R2)).
std::optional<PropertyCounterexample> CheckVacuity(
    const TheoryChangeOperator& op, int num_terms);

}  // namespace arbiter

#endif  // ARBITER_CHANGE_PROPERTIES_H_
