// Tests for Status/Result, the PRNG, bit helpers, and string helpers.

#include <gtest/gtest.h>

#include <set>

#include "util/bit.h"
#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"

namespace arbiter {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kCapacityExceeded, StatusCode::kNotFound,
        StatusCode::kUnsupported, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).ValueOrDie();
  EXPECT_EQ(s, "hello");
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBelow(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NextBoolExtremes) {
  Rng rng(13);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(BitTest, PopCount) {
  EXPECT_EQ(PopCount(0), 0);
  EXPECT_EQ(PopCount(0b1011), 3);
  EXPECT_EQ(PopCount(~0ULL), 64);
}

TEST(BitTest, LowestBitAndClear) {
  EXPECT_EQ(LowestBit(0b1000), 3);
  EXPECT_EQ(ClearLowestBit(0b1100), 0b1000u);
}

TEST(BitTest, IsSingleBit) {
  EXPECT_TRUE(IsSingleBit(1));
  EXPECT_TRUE(IsSingleBit(1ULL << 63));
  EXPECT_FALSE(IsSingleBit(0));
  EXPECT_FALSE(IsSingleBit(3));
}

TEST(BitTest, LowMask) {
  EXPECT_EQ(LowMask(0), 0u);
  EXPECT_EQ(LowMask(3), 0b111u);
  EXPECT_EQ(LowMask(64), ~0ULL);
}

TEST(BitTest, ForEachBitInOrder) {
  std::vector<int> bits;
  ForEachBit(0b101001, [&](int i) { bits.push_back(i); });
  EXPECT_EQ(bits, (std::vector<int>{0, 3, 5}));
}

TEST(StringTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
}

TEST(StringTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
  EXPECT_EQ(Trim("no-space"), "no-space");
}

TEST(StringTest, Split) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringTest, IdentPredicates) {
  EXPECT_TRUE(IsIdentStart('a'));
  EXPECT_TRUE(IsIdentStart('_'));
  EXPECT_FALSE(IsIdentStart('1'));
  EXPECT_TRUE(IsIdentCont('1'));
  EXPECT_TRUE(IsIdentCont('\''));
  EXPECT_FALSE(IsIdentCont('-'));
}

}  // namespace
}  // namespace arbiter
