// Tests for the Vocabulary term registry.

#include "logic/vocabulary.h"

#include <gtest/gtest.h>

namespace arbiter {
namespace {

TEST(VocabularyTest, AddAndLookup) {
  Vocabulary v;
  EXPECT_EQ(*v.AddTerm("A"), 0);
  EXPECT_EQ(*v.AddTerm("B"), 1);
  EXPECT_EQ(*v.Lookup("A"), 0);
  EXPECT_EQ(*v.Lookup("B"), 1);
  EXPECT_EQ(v.size(), 2);
}

TEST(VocabularyTest, DuplicateRejected) {
  Vocabulary v;
  ASSERT_TRUE(v.AddTerm("A").ok());
  Result<int> dup = v.AddTerm("A");
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);
}

TEST(VocabularyTest, EmptyNameRejected) {
  Vocabulary v;
  EXPECT_FALSE(v.AddTerm("").ok());
}

TEST(VocabularyTest, LookupUnknownIsNotFound) {
  Vocabulary v;
  EXPECT_EQ(v.Lookup("zzz").status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(v.Contains("zzz"));
}

TEST(VocabularyTest, GetOrAddIsIdempotent) {
  Vocabulary v;
  EXPECT_EQ(*v.GetOrAddTerm("X"), 0);
  EXPECT_EQ(*v.GetOrAddTerm("X"), 0);
  EXPECT_EQ(v.size(), 1);
}

TEST(VocabularyTest, FromNames) {
  auto v = Vocabulary::FromNames({"S", "D", "Q"});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->size(), 3);
  EXPECT_EQ(v->Name(1), "D");
}

TEST(VocabularyTest, FromNamesRejectsDuplicates) {
  EXPECT_FALSE(Vocabulary::FromNames({"A", "A"}).ok());
}

TEST(VocabularyTest, Synthetic) {
  Vocabulary v = Vocabulary::Synthetic(4);
  EXPECT_EQ(v.size(), 4);
  EXPECT_EQ(v.Name(0), "p0");
  EXPECT_EQ(v.Name(3), "p3");
}

TEST(VocabularyTest, CapacityLimit) {
  Vocabulary v = Vocabulary::Synthetic(kMaxVocabularyTerms);
  Result<int> over = v.AddTerm("overflow");
  EXPECT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kCapacityExceeded);
}

TEST(VocabularyTest, NumInterpretations) {
  EXPECT_EQ(Vocabulary::Synthetic(0).NumInterpretations(), 1u);
  EXPECT_EQ(Vocabulary::Synthetic(10).NumInterpretations(), 1024u);
}

TEST(VocabularyTest, Equality) {
  EXPECT_EQ(Vocabulary::Synthetic(2), Vocabulary::Synthetic(2));
  EXPECT_FALSE(Vocabulary::Synthetic(2) == Vocabulary::Synthetic(3));
}

}  // namespace
}  // namespace arbiter
