#include "test_support/proof_fuzz.h"

#include <sstream>
#include <utility>
#include <vector>

#include "logic/generator.h"
#include "proof/certify.h"
#include "sat/dimacs.h"
#include "test_support/cnf_instances.h"
#include "util/random.h"

namespace arbiter::test_support {
namespace {

// ClauseSink collecting into a CnfInstance, for the crafted builders.
struct CollectSink : sat::ClauseSink {
  sat::CnfInstance cnf;
  sat::Var NewVar() override { return cnf.num_vars++; }
  int NumVars() const override { return cnf.num_vars; }
  bool AddClause(std::vector<sat::Lit> lits) override {
    cnf.clauses.push_back(std::move(lits));
    return true;
  }
};

sat::CnfInstance RandomInstance(Rng* rng, std::string* label) {
  std::ostringstream desc;
  CollectSink sink;
  if (rng->NextBool(0.15)) {
    // Crafted UNSAT with real search: pigeonhole.
    const int holes = static_cast<int>(rng->NextInRange(2, 4));
    AddPigeonhole(&sink, holes);
    desc << "php(" << holes << ")";
  } else if (rng->NextBool(0.15)) {
    // BVE-heavy chains, optionally made UNSAT by a contradiction.
    const int chains = static_cast<int>(rng->NextInRange(1, 3));
    const int length = static_cast<int>(rng->NextInRange(2, 4));
    AddBveChains(&sink, chains, length);
    desc << "bve(" << chains << "x" << length << ")";
    if (rng->NextBool(0.5)) {
      const sat::Var x = sink.NewVar();
      sink.AddClause({sat::Lit::Pos(x)});
      sink.AddClause({sat::Lit::Neg(x)});
      desc << "+contradiction";
    }
  } else {
    // Random 3-CNF straddling the SAT/UNSAT threshold (ratio ~3-6).
    const int n = static_cast<int>(rng->NextInRange(4, 10));
    const int m = static_cast<int>(rng->NextInRange(3 * n, 6 * n));
    const Formula f = RandomKCnf(rng, n, m, 3);
    sink.cnf.num_vars = n;
    sink.cnf.clauses = KCnfClauses(f);
    desc << "k3(n=" << n << ",m=" << m << ")";
  }
  *label = desc.str();
  return sink.cnf;
}

bool ModelSatisfies(const sat::CnfInstance& cnf,
                    const std::vector<bool>& model) {
  for (const auto& clause : cnf.clauses) {
    bool sat = false;
    for (const sat::Lit l : clause) {
      if (l.var() < static_cast<int>(model.size()) &&
          model[l.var()] != l.negated()) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

}  // namespace

ProofFuzzResult RunProofFuzz(const ProofFuzzOptions& options) {
  ProofFuzzResult result;
  Rng rng(options.seed);
  // The generated instances are tiny; exercise the real pipeline.
  const int saved_floor = sat::SatPreprocessMinClauses();
  sat::SetSatPreprocessMinClauses(0);
  for (int i = 0; i < options.cases; ++i) {
    std::string label;
    const sat::CnfInstance cnf = RandomInstance(&rng, &label);
    ++result.cases_run;
    sat::SolveStatus first_status = sat::SolveStatus::kUnknown;
    bool case_failed = false;
    bool case_unsat = false;
    for (const bool pp : {false, true}) {
      const proof::CnfProofResult r = proof::SolveCnfWithProof(cnf, pp);
      std::ostringstream err;
      if (r.status == sat::SolveStatus::kUnknown) {
        err << "solver returned kUnknown";
      } else if (!pp) {
        first_status = r.status;
      } else if (r.status != first_status) {
        err << "pipelines disagree on status";
      }
      if (r.status == sat::SolveStatus::kUnsat) {
        case_unsat = true;
        if (!r.certified) {
          err << "UNSAT proof rejected: " << r.check.error;
        }
      } else if (r.status == sat::SolveStatus::kSat &&
                 !ModelSatisfies(cnf, r.model)) {
        err << "SAT model does not satisfy the instance";
      }
      if (!err.str().empty()) {
        case_failed = true;
        if (result.first_failure.empty()) {
          std::ostringstream msg;
          msg << "case " << i << " (" << label << ", seed " << options.seed
              << ", preprocessor " << (pp ? "on" : "off") << "): "
              << err.str();
          result.first_failure = msg.str();
        }
      }
    }
    if (case_unsat) {
      ++result.unsat_cases;
    } else if (first_status == sat::SolveStatus::kSat) {
      ++result.sat_cases;
    }
    if (case_failed) {
      ++result.failures;
      if (options.stop_on_failure) break;
    }
  }
  sat::SetSatPreprocessMinClauses(saved_floor);
  return result;
}

}  // namespace arbiter::test_support
