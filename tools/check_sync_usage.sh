#!/bin/sh
# Enforces the util/sync.h capability-lock discipline: raw standard
# synchronization primitives must not appear in src/, tools/, or
# bench/ outside src/util/sync.h itself.  Everything else goes through
# the annotated Mutex/SharedMutex/CondVar wrappers so Clang's
# -Wthread-safety pass and the LockRank lock-order detector see every
# acquisition.
#
# Usage: tools/check_sync_usage.sh [repo-root]
# Exit 0 when clean, 1 with the offending lines otherwise.
#
# Comment lines are ignored (docs may *mention* std::mutex); only code
# counts.  Registered as a ctest (`sync_usage_guard`) and run in CI.

set -eu

root="${1:-$(dirname "$0")/..}"
cd "$root"

pattern='std::(mutex|recursive_mutex|timed_mutex|shared_mutex|shared_timed_mutex|lock_guard|unique_lock|shared_lock|scoped_lock|condition_variable|condition_variable_any)'

# -I skips binaries; comments stripped by dropping lines whose first
# non-blank characters open a // or /* comment.
violations=$(grep -rEnI "$pattern" src tools bench \
  --include='*.h' --include='*.cc' \
  | grep -v '^src/util/sync\.h:' \
  | grep -vE '^[^:]*:[0-9]+:[[:space:]]*(//|/\*|\*)' \
  || true)

if [ -n "$violations" ]; then
  echo "error: raw standard sync primitives outside src/util/sync.h —" >&2
  echo "use arbiter::Mutex / SharedMutex / CondVar (util/sync.h) so" >&2
  echo "-Wthread-safety and LockRank cover the acquisition:" >&2
  echo "$violations" >&2
  exit 1
fi

echo "sync usage clean: all locking goes through util/sync.h"
