#include "postulates/iterated_checker.h"

#include "util/logging.h"

namespace arbiter {

std::string IteratedPostulateName(IteratedPostulate p) {
  switch (p) {
    case IteratedPostulate::kI1: return "I1";
    case IteratedPostulate::kI2: return "I2";
    case IteratedPostulate::kI3: return "I3";
    case IteratedPostulate::kI4: return "I4";
  }
  return "?";
}

std::string IteratedPostulateStatement(IteratedPostulate p) {
  switch (p) {
    case IteratedPostulate::kI1:
      return "if mu2 implies mu1 then (psi*mu1)*mu2 == psi*mu2";
    case IteratedPostulate::kI2:
      return "if mu2 implies !mu1 then (psi*mu1)*mu2 == psi*mu2";
    case IteratedPostulate::kI3:
      return "if psi*mu2 implies mu1 then (psi*mu1)*mu2 implies mu1";
    case IteratedPostulate::kI4:
      return "if psi*mu2 is consistent with mu1 then (psi*mu1)*mu2 is "
             "consistent with mu1";
  }
  return "?";
}

std::vector<IteratedPostulate> AllIteratedPostulates() {
  return {IteratedPostulate::kI1, IteratedPostulate::kI2,
          IteratedPostulate::kI3, IteratedPostulate::kI4};
}

namespace {

std::string CodeStr(SetCode code, int num_terms) {
  std::string out = "{";
  bool first = true;
  for (uint64_t m = 0; m < (1ULL << num_terms); ++m) {
    if ((code >> m) & 1) {
      if (!first) out += ",";
      out += std::to_string(m);
      first = false;
    }
  }
  return out + "}";
}

}  // namespace

std::string IteratedCounterexample::Describe() const {
  return IteratedPostulateName(postulate) +
         " violated: psi=" + CodeStr(psi, num_terms) +
         " mu1=" + CodeStr(mu1, num_terms) +
         " mu2=" + CodeStr(mu2, num_terms) + "  [" +
         IteratedPostulateStatement(postulate) + "]";
}

IteratedChecker::IteratedChecker(
    std::shared_ptr<const TheoryChangeOperator> op, int num_terms)
    : op_(std::move(op)), num_terms_(num_terms) {
  ARBITER_CHECK(op_ != nullptr);
  ARBITER_CHECK(num_terms >= 1 && num_terms <= 3);
  space_ = 1ULL << num_terms_;
  num_codes_ = 1ULL << space_;
  cache_.assign(num_codes_ * num_codes_, kUnusedCode);
}

ModelSet IteratedChecker::CodeToModelSet(SetCode code) const {
  std::vector<uint64_t> masks;
  for (uint64_t m = 0; m < space_; ++m) {
    if ((code >> m) & 1) masks.push_back(m);
  }
  return ModelSet::FromMasks(std::move(masks), num_terms_);
}

SetCode IteratedChecker::Change(SetCode psi, SetCode mu) {
  SetCode& slot = cache_[psi * num_codes_ + mu];
  if (slot == kUnusedCode) {
    ModelSet result = op_->Change(CodeToModelSet(psi), CodeToModelSet(mu));
    SetCode out = 0;
    for (uint64_t m : result) out |= SetCode{1} << m;
    slot = out;
  }
  return slot;
}

std::optional<IteratedCounterexample> IteratedChecker::CheckExhaustive(
    IteratedPostulate p) {
  auto implies = [](SetCode a, SetCode b) { return (a & ~b) == 0; };
  const SetCode full = (space_ >= 64) ? ~SetCode{0}
                                      : ((SetCode{1} << space_) - 1);
  for (SetCode psi = 0; psi < num_codes_; ++psi) {
    for (SetCode mu1 = 0; mu1 < num_codes_; ++mu1) {
      for (SetCode mu2 = 0; mu2 < num_codes_; ++mu2) {
        bool holds = true;
        switch (p) {
          case IteratedPostulate::kI1:
            holds = !implies(mu2, mu1) ||
                    Change(Change(psi, mu1), mu2) == Change(psi, mu2);
            break;
          case IteratedPostulate::kI2:
            holds = !implies(mu2, full & ~mu1) ||
                    Change(Change(psi, mu1), mu2) == Change(psi, mu2);
            break;
          case IteratedPostulate::kI3:
            holds = !implies(Change(psi, mu2), mu1) ||
                    implies(Change(Change(psi, mu1), mu2), mu1);
            break;
          case IteratedPostulate::kI4:
            holds = (Change(psi, mu2) & mu1) == 0 ||
                    (Change(Change(psi, mu1), mu2) & mu1) != 0;
            break;
        }
        if (!holds) {
          return IteratedCounterexample{p, num_terms_, psi, mu1, mu2};
        }
      }
    }
  }
  return std::nullopt;
}

std::vector<std::string> IteratedChecker::FailingPostulates() {
  std::vector<std::string> out;
  for (IteratedPostulate p : AllIteratedPostulates()) {
    if (CheckExhaustive(p).has_value()) {
      out.push_back(IteratedPostulateName(p));
    }
  }
  return out;
}

}  // namespace arbiter
