#ifndef ARBITER_MODEL_FORGET_H_
#define ARBITER_MODEL_FORGET_H_

#include "model/model_set.h"

/// \file forget.h
/// Variable forgetting (existential quantification) on model sets —
/// standard belief change tooling: Forget(φ, p) ≡ φ[p := ⊤] ∨
/// φ[p := ⊥].  Semantically the model set becomes closed under
/// flipping the forgotten variable.  Useful for projecting merged or
/// arbitrated results onto the vocabulary a query cares about.

namespace arbiter {

/// Forgets one variable: the result is the smallest superset of
/// `models` closed under flipping bit `var`.
ModelSet Forget(const ModelSet& models, int var);

/// Forgets every variable set in `var_mask`.
ModelSet ForgetAll(const ModelSet& models, uint64_t var_mask);

/// True iff the set is already independent of `var` (forgetting it
/// changes nothing).
bool IsIndependentOf(const ModelSet& models, int var);

}  // namespace arbiter

#endif  // ARBITER_MODEL_FORGET_H_
