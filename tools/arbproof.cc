// arbproof: check a DRAT refutation against a DIMACS CNF instance
// with the independent proof checker, or solve an instance with proof
// recording and emit the certified refutation.
//
//   arbproof <file.cnf> <proof.drat>     # check: exit status = verdict
//   arbproof --solve <file.cnf>          # solve + self-check the proof
//   arbproof --solve --emit=out.drat <file.cnf>
//
// Options:
//   --forward       verify every proof step (default: backward, only
//                   steps the refutation depends on)
//   --strict-deletions  reject deletions of clauses not in the DB
//   --core          print the unsat core (1-based formula indices)
//   --stats         print checker statistics
//   --solve         solve the instance instead of reading a proof
//   --no-preprocess with --solve: raw CDCL, no SatELite pipeline
//   --emit=<path>   with --solve: write the recorded proof
//   --binary        emit binary DRAT (default ASCII)
//   -q              suppress the verdict line
//
// Exit codes: 0 proof accepted / instance SAT with verified model,
// 1 proof rejected / UNSAT proof failed self-check, 3 usage or I/O
// failure.  The proof format (ASCII vs binary) is autodetected.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "proof/certify.h"
#include "proof/checker.h"
#include "proof/drat.h"
#include "sat/dimacs.h"

namespace {

using arbiter::Result;
using arbiter::proof::DratCheckOptions;
using arbiter::proof::DratCheckResult;
using arbiter::proof::DratChecker;
using arbiter::proof::ProofStep;

int Usage() {
  std::cerr
      << "usage: arbproof [options] <file.cnf> <proof.drat>\n"
      << "       arbproof --solve [options] <file.cnf>\n"
      << "options:\n"
      << "  --forward           check every step, not just the needed ones\n"
      << "  --strict-deletions  reject deletions of absent clauses\n"
      << "  --core              print the unsat core (formula indices)\n"
      << "  --stats             print checker statistics\n"
      << "  --solve             solve with proof recording, self-check\n"
      << "  --no-preprocess     with --solve: skip the SatELite pipeline\n"
      << "  --emit=<path>       with --solve: write the recorded proof\n"
      << "  --binary            emit binary DRAT (default ASCII)\n"
      << "  -q                  suppress the verdict line\n"
      << "exit codes: 0 accepted/sat, 1 rejected, 3 usage/IO error\n";
  return 3;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

void PrintCheck(const DratCheckResult& result, bool want_core,
                bool want_stats) {
  if (want_core) {
    std::printf("core:");
    for (const int idx : result.core) std::printf(" %d", idx + 1);
    std::printf("\n");
  }
  if (want_stats) {
    const auto& s = result.stats;
    std::printf("steps %llu  additions %llu  deletions %llu  "
                "verified %llu  skipped %llu  rat-checks %llu  "
                "propagations %llu\n",
                static_cast<unsigned long long>(s.steps),
                static_cast<unsigned long long>(s.additions),
                static_cast<unsigned long long>(s.deletions),
                static_cast<unsigned long long>(s.verified),
                static_cast<unsigned long long>(s.skipped),
                static_cast<unsigned long long>(s.rat_checks),
                static_cast<unsigned long long>(s.propagations));
  }
}

}  // namespace

int main(int argc, char** argv) {
  DratCheckOptions options;
  bool solve = false;
  bool preprocess = true;
  bool binary = false;
  bool want_core = false;
  bool want_stats = false;
  bool quiet = false;
  std::string emit_path;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--forward") {
      options.backward = false;
    } else if (arg == "--strict-deletions") {
      options.strict_deletions = true;
    } else if (arg == "--core") {
      want_core = true;
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (arg == "--solve") {
      solve = true;
    } else if (arg == "--no-preprocess") {
      preprocess = false;
    } else if (arg.rfind("--emit=", 0) == 0) {
      emit_path = arg.substr(7);
    } else if (arg == "--binary") {
      binary = true;
    } else if (arg == "-q") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::cerr << "arbproof: unknown option " << arg << "\n";
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != (solve ? 1u : 2u)) return Usage();

  std::string cnf_text;
  if (!ReadFile(files[0], &cnf_text)) {
    std::cerr << "arbproof: cannot read " << files[0] << "\n";
    return 3;
  }
  Result<arbiter::sat::CnfInstance> cnf = arbiter::sat::ParseDimacs(cnf_text);
  if (!cnf.ok()) {
    std::cerr << "arbproof: " << files[0] << ": "
              << cnf.status().ToString() << "\n";
    return 3;
  }

  if (solve) {
    const arbiter::proof::CnfProofResult result =
        arbiter::proof::SolveCnfWithProof(cnf.ValueOrDie(), preprocess);
    if (result.status == arbiter::sat::SolveStatus::kSat) {
      if (!quiet) std::printf("s SATISFIABLE\n");
      return 0;
    }
    if (result.status != arbiter::sat::SolveStatus::kUnsat) {
      std::cerr << "arbproof: solver returned unknown\n";
      return 3;
    }
    if (!emit_path.empty()) {
      const std::string bytes = binary
                                    ? arbiter::proof::ToDratBinary(result.proof)
                                    : arbiter::proof::ToDratAscii(result.proof);
      std::ofstream out(emit_path, std::ios::binary);
      out << bytes;
      if (!out) {
        std::cerr << "arbproof: cannot write " << emit_path << "\n";
        return 3;
      }
    }
    PrintCheck(result.check, want_core, want_stats);
    if (!quiet) {
      std::printf("s UNSATISFIABLE\n%s\n",
                  result.certified ? "c proof VERIFIED" : "c proof REJECTED");
    }
    if (!result.certified) {
      std::cerr << "arbproof: self-check failed: " << result.check.error
                << "\n";
      return 1;
    }
    return 0;
  }

  std::string proof_bytes;
  if (!ReadFile(files[1], &proof_bytes)) {
    std::cerr << "arbproof: cannot read " << files[1] << "\n";
    return 3;
  }
  Result<std::vector<ProofStep>> proof =
      arbiter::proof::ParseDrat(proof_bytes);
  if (!proof.ok()) {
    std::cerr << "arbproof: " << files[1] << ": "
              << proof.status().ToString() << "\n";
    return 3;
  }

  DratChecker checker;
  for (const auto& clause : cnf.ValueOrDie().clauses) {
    checker.AddFormulaClause(clause);
  }
  const DratCheckResult result =
      checker.Check(proof.ValueOrDie(), options);
  PrintCheck(result, want_core, want_stats);
  if (!quiet) {
    std::printf("%s\n", result.ok ? "s VERIFIED" : "s NOT VERIFIED");
  }
  if (!result.ok) {
    std::cerr << "arbproof: " << result.error << "\n";
    return 1;
  }
  return 0;
}
