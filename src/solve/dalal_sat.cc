#include "solve/dalal_sat.h"

#include "enc/totalizer.h"
#include "enc/tseitin.h"
#include "sat/all_sat.h"
#include "sat/preprocessor.h"
#include "solve/sat_bridge.h"

namespace arbiter::solve {

using sat::Lit;
using sat::SatPreprocessor;
using sat::SolveStatus;

SatRevisionResult SatDalalRevise(const Formula& psi, const Formula& mu,
                                 int num_terms, int64_t max_models,
                                 const std::vector<int64_t>& metric) {
  ARBITER_CHECK(num_terms >= 1 && num_terms <= 63);
  SatRevisionResult result;

  // Degenerate cases first.
  if (!SatIsSatisfiable(mu, num_terms)) {
    ++result.num_sat_calls;
    return result;  // Mod(μ) empty ⇒ revision empty.
  }
  if (!SatIsSatisfiable(psi, num_terms)) {
    result.num_sat_calls += 2;
    result.psi_unsat = true;
    result.min_distance = 0;
    // Convention: ψ unsatisfiable ⇒ result is Mod(μ).
    SatPreprocessor solver;
    enc::TseitinEncoder encoder(&solver);
    encoder.ReserveInputVars(num_terms);
    encoder.Assert(mu);
    solver.FreezeRange(0, num_terms);  // AllSAT projects onto the inputs
    sat::AllSatOptions options;
    options.num_project = num_terms;
    options.max_models = max_models + 1;
    result.models = sat::CollectAllSat(&solver, options);
    if (static_cast<int64_t>(result.models.size()) > max_models) {
      result.models.resize(max_models);
      result.truncated = true;
    }
    return result;
  }

  // Joint solver: x = model of μ on [0, n), y = model of ψ on [n, 2n).
  // Preprocessing runs after the two Asserts (eliminating Tseitin
  // auxiliaries) and before the diff/totalizer layers, whose fresh
  // variables are then never elimination candidates.
  SatPreprocessor solver;
  enc::TseitinEncoder encoder(&solver);
  encoder.ReserveInputVars(2 * num_terms);
  encoder.Assert(mu);
  encoder.Assert(ShiftVars(psi, num_terms));
  solver.FreezeRange(0, 2 * num_terms);
  solver.Preprocess();
  std::vector<Lit> diffs = RepeatByWeights(
      MakeDiffBits(&solver, num_terms, num_terms), metric);
  enc::Totalizer counter(&solver, diffs);

  // Binary search the least k with a solution at distance <= k.  Both
  // inputs are satisfiable, so k = diameter (Σ weights) always works.
  const int diameter = static_cast<int>(diffs.size());
  int lo = 0;
  int hi = diameter;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    ++result.num_sat_calls;
    SolveStatus status =
        solver.SolveAssuming({counter.AtMost(mid)});
    if (status == SolveStatus::kSat) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  result.min_distance = lo;

  // Freeze the optimum and enumerate result models projected onto x.
  if (lo < diameter) solver.AddUnit(counter.AtMost(lo));
  sat::AllSatOptions options;
  options.num_project = num_terms;
  options.max_models = max_models + 1;
  result.models = sat::CollectAllSat(&solver, options);
  result.num_sat_calls += static_cast<int>(result.models.size()) + 1;
  if (static_cast<int64_t>(result.models.size()) > max_models) {
    result.models.resize(max_models);
    result.truncated = true;
  }
  return result;
}

}  // namespace arbiter::solve
