#ifndef ARBITER_LOGIC_VOCABULARY_H_
#define ARBITER_LOGIC_VOCABULARY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

/// \file vocabulary.h
/// The finite set of propositional terms T of the paper (Section 2).
///
/// A Vocabulary maps term names to dense indices [0, size).  All
/// interpretations, model sets, and operators are implicitly relative
/// to a vocabulary.  At most kMaxVocabularyTerms terms are supported so
/// that an interpretation fits in a single 64-bit word.

namespace arbiter {

/// Hard upper bound on vocabulary size (one bit per term in a uint64_t).
inline constexpr int kMaxVocabularyTerms = 64;

/// Upper bound for code paths that enumerate all 2^n interpretations.
inline constexpr int kMaxEnumTerms = 24;

/// An ordered, named set of propositional terms.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Creates a vocabulary with terms named by `names`, in order.
  /// Duplicate names are rejected.
  static Result<Vocabulary> FromNames(const std::vector<std::string>& names);

  /// Creates a vocabulary of n terms named p0, p1, ..., p{n-1}.
  static Vocabulary Synthetic(int n);

  /// Adds a term; returns its index, or an error if the name exists or
  /// the vocabulary is full.
  Result<int> AddTerm(const std::string& name);

  /// Returns the index of `name`, adding it if absent.
  Result<int> GetOrAddTerm(const std::string& name);

  /// Returns the index of `name`, or kNotFound.
  Result<int> Lookup(const std::string& name) const;

  /// True iff `name` is a term of this vocabulary.
  bool Contains(const std::string& name) const;

  /// Name of term i.  Requires 0 <= i < size().
  const std::string& Name(int i) const;

  int size() const { return static_cast<int>(names_.size()); }

  /// Number of interpretations (2^size).  Requires size() <= kMaxEnumTerms.
  uint64_t NumInterpretations() const;

  const std::vector<std::string>& names() const { return names_; }

  bool operator==(const Vocabulary& other) const {
    return names_ == other.names_;
  }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace arbiter

#endif  // ARBITER_LOGIC_VOCABULARY_H_
