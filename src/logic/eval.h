#ifndef ARBITER_LOGIC_EVAL_H_
#define ARBITER_LOGIC_EVAL_H_

#include "logic/formula.h"
#include "logic/interpretation.h"

/// \file eval.h
/// Truth-table evaluation of formulas under interpretations.

namespace arbiter {

/// Evaluates `f` under the interpretation whose true-term bitmask is
/// `bits` (bit i == term i).  Variables outside the mask width evaluate
/// per their bit, so callers must ensure f.MaxVar() < 64.
bool Evaluate(const Formula& f, uint64_t bits);

/// Evaluates `f` under `interp`.  Requires f.MaxVar() < interp.num_terms().
bool Evaluate(const Formula& f, const Interpretation& interp);

}  // namespace arbiter

#endif  // ARBITER_LOGIC_EVAL_H_
