// Distance-kernel benchmarks: dist, dist(psi, I), odist(psi, I),
// Σ-dist, and wdist — the inner loops of every operator.

#include <benchmark/benchmark.h>

#include "kb/weighted_kb.h"
#include "model/distance.h"
#include "util/random.h"

namespace {

using namespace arbiter;

ModelSet RandomSet(Rng* rng, int n, double density) {
  std::vector<uint64_t> masks;
  for (uint64_t m = 0; m < (1ULL << n); ++m) {
    if (rng->NextBool(density)) masks.push_back(m);
  }
  if (masks.empty()) masks.push_back(0);
  return ModelSet::FromMasks(std::move(masks), n);
}

void BM_PointDistance(benchmark::State& state) {
  Rng rng(1);
  uint64_t a = rng.Next(), b = rng.Next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dist(a, b));
    a = (a << 1) | (a >> 63);
  }
}
BENCHMARK(BM_PointDistance);

void BM_MinDist(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n);
  ModelSet psi = RandomSet(&rng, n, 0.3);
  uint64_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinDist(psi, probe));
    probe = (probe + 0x9E3779B9) & LowMask(n);
  }
  state.SetItemsProcessed(state.iterations() * psi.size());
}
BENCHMARK(BM_MinDist)->Arg(10)->Arg(14)->Arg(18);

void BM_OverallDist(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n + 10);
  ModelSet psi = RandomSet(&rng, n, 0.3);
  uint64_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(OverallDist(psi, probe));
    probe = (probe + 0x9E3779B9) & LowMask(n);
  }
  state.SetItemsProcessed(state.iterations() * psi.size());
}
BENCHMARK(BM_OverallDist)->Arg(10)->Arg(14)->Arg(18);

void BM_SumDist(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n + 20);
  ModelSet psi = RandomSet(&rng, n, 0.3);
  uint64_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SumDist(psi, probe));
    probe = (probe + 0x9E3779B9) & LowMask(n);
  }
  state.SetItemsProcessed(state.iterations() * psi.size());
}
BENCHMARK(BM_SumDist)->Arg(10)->Arg(14)->Arg(18);

// Bounded (branch-and-bound) kernels against a realistic incumbent:
// the bound is the exact aggregate of probe 0, i.e. what the argmin
// loop holds after its first candidate.  Compare against BM_OverallDist
// / BM_SumDist to read off the pruning win.
void BM_OverallDistBounded(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n + 10);  // same workload as BM_OverallDist
  ModelSet psi = RandomSet(&rng, n, 0.3);
  const int bound = OverallDist(psi, 0) + 1;
  uint64_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(OverallDistBounded(psi, probe, bound));
    probe = (probe + 0x9E3779B9) & LowMask(n);
  }
  state.SetItemsProcessed(state.iterations() * psi.size());
  state.counters["bound"] = bound;
}
BENCHMARK(BM_OverallDistBounded)->Arg(10)->Arg(14)->Arg(18);

void BM_SumDistBounded(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n + 20);  // same workload as BM_SumDist
  ModelSet psi = RandomSet(&rng, n, 0.3);
  const int64_t bound = SumDist(psi, 0) + 1;
  uint64_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SumDistBounded(psi, probe, bound));
    probe = (probe + 0x9E3779B9) & LowMask(n);
  }
  state.SetItemsProcessed(state.iterations() * psi.size());
  state.counters["bound"] = static_cast<double>(bound);
}
BENCHMARK(BM_SumDistBounded)->Arg(10)->Arg(14)->Arg(18);

void BM_WeightedDist(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n + 30);
  WeightedKnowledgeBase kb(n);
  for (uint64_t m = 0; m < (1ULL << n); ++m) {
    if (rng.NextBool(0.3)) kb.SetWeight(m, 1 + rng.NextBelow(10));
  }
  uint64_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kb.WeightedDistTo(probe));
    probe = (probe + 0x9E3779B9) & LowMask(n);
  }
  state.SetItemsProcessed(state.iterations() * (1LL << n));
}
BENCHMARK(BM_WeightedDist)->Arg(10)->Arg(14)->Arg(18);

}  // namespace
