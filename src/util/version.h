#ifndef ARBITER_UTIL_VERSION_H_
#define ARBITER_UTIL_VERSION_H_

/// \file version.h
/// Tool and solver identification strings, carried in machine-readable
/// lint output (arblint --format=json / SARIF) so downstream consumers
/// can pin which decision procedure produced a verdict.  Bump
/// kSolverVersion when the CDCL tier, the preprocessor, or the proof
/// subsystem changes behavior.

namespace arbiter {

/// The arblint tool version.
inline constexpr const char* kArblintVersion = "0.4.0";

/// The SAT stack behind every semantic verdict: CDCL solver, SatELite
/// preprocessor, and the DRAT proof subsystem used by --certify.
inline constexpr const char* kSolverVersion =
    "arbiter-cdcl 0.4.0 (satelite-pre, drat)";

}  // namespace arbiter

#endif  // ARBITER_UTIL_VERSION_H_
