// Tests for the distance measures and Min operations of the paper.

#include "model/distance.h"

#include <gtest/gtest.h>

#include "model/preorder.h"
#include "util/random.h"

namespace arbiter {
namespace {

TEST(DistanceTest, PointDistances) {
  EXPECT_EQ(Dist(0b000, 0b111), 3);
  EXPECT_EQ(Dist(0b101, 0b101), 0);
  EXPECT_EQ(Dist(0b100, 0b001), 2);
}

TEST(DistanceTest, MinMaxSumOverSet) {
  ModelSet psi = ModelSet::FromMasks({0b001, 0b010, 0b111}, 3);
  // Distances from 0b010: 2, 0, 2.
  EXPECT_EQ(MinDist(psi, 0b010), 0);
  EXPECT_EQ(OverallDist(psi, 0b010), 2);
  EXPECT_EQ(SumDist(psi, 0b010), 4);
  // Distances from 0b011: 1, 1, 1.
  EXPECT_EQ(MinDist(psi, 0b011), 1);
  EXPECT_EQ(OverallDist(psi, 0b011), 1);
  EXPECT_EQ(SumDist(psi, 0b011), 3);
}

TEST(DistanceTest, SingletonSetCollapsesAllThree) {
  ModelSet psi = ModelSet::Singleton(0b0110, 4);
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    uint64_t x = rng.NextBelow(16);
    int d = Dist(x, 0b0110);
    EXPECT_EQ(MinDist(psi, x), d);
    EXPECT_EQ(OverallDist(psi, x), d);
    EXPECT_EQ(SumDist(psi, x), d);
  }
}

TEST(DistanceTest, OrderingInvariants) {
  Rng rng(9);
  for (int round = 0; round < 50; ++round) {
    std::vector<uint64_t> masks;
    for (uint64_t m = 0; m < 16; ++m) {
      if (rng.NextBool(0.4)) masks.push_back(m);
    }
    if (masks.empty()) continue;
    ModelSet psi = ModelSet::FromMasks(masks, 4);
    uint64_t x = rng.NextBelow(16);
    EXPECT_LE(MinDist(psi, x), OverallDist(psi, x));
    EXPECT_LE(OverallDist(psi, x), SumDist(psi, x));
    EXPECT_LE(SumDist(psi, x),
              static_cast<int64_t>(psi.size()) * OverallDist(psi, x));
    // Members have min distance zero.
    EXPECT_EQ(MinDist(psi, masks[0]), 0);
  }
}

TEST(PreorderTest, MinByPicksAllMinima) {
  ModelSet s = ModelSet::FromMasks({0, 1, 2, 3}, 2);
  // Rank by popcount: minima are {0}.
  ModelSet minima = MinByInt(
      s, [](uint64_t m) { return static_cast<int64_t>(PopCount(m)); });
  EXPECT_EQ(minima, ModelSet::FromMasks({0}, 2));
  // Constant rank: everything minimal.
  ModelSet all = MinBy(s, [](uint64_t) { return 1.0; });
  EXPECT_EQ(all, s);
}

TEST(PreorderTest, MinByEmptyInput) {
  ModelSet empty(3);
  EXPECT_TRUE(MinBy(empty, [](uint64_t) { return 0.0; }).empty());
}

TEST(PreorderTest, TotalPreorderMaterializesRanks) {
  TotalPreorder order(2, [](uint64_t m) { return 10.0 - m; });
  EXPECT_DOUBLE_EQ(order.Rank(0), 10.0);
  EXPECT_TRUE(order.Less(3, 0));
  EXPECT_TRUE(order.Leq(3, 3));
  EXPECT_TRUE(order.Equiv(2, 2));
  EXPECT_FALSE(order.Equiv(1, 2));
}

TEST(PreorderTest, MinOfAgreesWithMinBy) {
  Rng rng(13);
  for (int round = 0; round < 30; ++round) {
    std::vector<uint64_t> masks;
    for (uint64_t m = 0; m < 8; ++m) {
      if (rng.NextBool(0.5)) masks.push_back(m);
    }
    if (masks.empty()) continue;
    ModelSet s = ModelSet::FromMasks(masks, 3);
    ModelSet psi = ModelSet::FromMasks({masks[0]}, 3);
    TotalPreorder order(3, [&](uint64_t m) {
      return static_cast<double>(MinDist(psi, m));
    });
    ModelSet a = order.MinOf(s);
    ModelSet b = MinByInt(
        s, [&](uint64_t m) { return static_cast<int64_t>(MinDist(psi, m)); });
    EXPECT_EQ(a, b);
  }
}

}  // namespace
}  // namespace arbiter
