#ifndef ARBITER_UTIL_RANDOM_H_
#define ARBITER_UTIL_RANDOM_H_

#include <cstdint>

/// \file random.h
/// Deterministic pseudo-random number generation for workload
/// generators and property tests.  We implement our own generators
/// (SplitMix64 seeding a xoshiro256**) so that test and benchmark
/// workloads are reproducible across standard-library implementations.

namespace arbiter {

/// SplitMix64 step: used to expand a single seed into generator state.
uint64_t SplitMix64(uint64_t* state);

/// xoshiro256** 1.0 — fast, high-quality 64-bit PRNG.
class Rng {
 public:
  /// Seeds the generator deterministically from a single 64-bit seed.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next 64 random bits.
  uint64_t Next();

  /// Returns a uniform integer in [0, bound).  bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability p (clamped to [0, 1]).
  bool NextBool(double p = 0.5);

 private:
  uint64_t s_[4];
};

}  // namespace arbiter

#endif  // ARBITER_UTIL_RANDOM_H_
