// Fixed-seed smoke tier for the proof-certification fuzz harness:
// random instances solved through both pipelines with proof recording
// on; every UNSAT verdict must certify and every SAT model must check.
// bench/fuzz_driver --proof-cases runs the same harness at scale.

#include "test_support/proof_fuzz.h"

#include <gtest/gtest.h>

namespace arbiter::test_support {
namespace {

TEST(ProofFuzzTest, FixedSeedSmoke) {
  ProofFuzzOptions options;
  options.seed = 0xA5B17EB5EEDULL;
  options.cases = 150;
  const ProofFuzzResult result = RunProofFuzz(options);
  EXPECT_EQ(result.failures, 0) << result.first_failure;
  EXPECT_EQ(result.cases_run, options.cases);
  // The mix must actually exercise both verdicts.
  EXPECT_GT(result.unsat_cases, 10);
  EXPECT_GT(result.sat_cases, 10);
}

TEST(ProofFuzzTest, SecondSeedSmoke) {
  ProofFuzzOptions options;
  options.seed = 42;
  options.cases = 100;
  const ProofFuzzResult result = RunProofFuzz(options);
  EXPECT_EQ(result.failures, 0) << result.first_failure;
}

}  // namespace
}  // namespace arbiter::test_support
