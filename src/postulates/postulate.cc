#include "postulates/postulate.h"

namespace arbiter {

std::string PostulateName(Postulate p) {
  switch (p) {
    case Postulate::kR1: return "R1";
    case Postulate::kR2: return "R2";
    case Postulate::kR3: return "R3";
    case Postulate::kR4: return "R4";
    case Postulate::kR5: return "R5";
    case Postulate::kR6: return "R6";
    case Postulate::kU1: return "U1";
    case Postulate::kU2: return "U2";
    case Postulate::kU3: return "U3";
    case Postulate::kU4: return "U4";
    case Postulate::kU5: return "U5";
    case Postulate::kU6: return "U6";
    case Postulate::kU7: return "U7";
    case Postulate::kU8: return "U8";
    case Postulate::kA1: return "A1";
    case Postulate::kA2: return "A2";
    case Postulate::kA3: return "A3";
    case Postulate::kA4: return "A4";
    case Postulate::kA5: return "A5";
    case Postulate::kA6: return "A6";
    case Postulate::kA7: return "A7";
    case Postulate::kA8: return "A8";
  }
  return "?";
}

std::string PostulateStatement(Postulate p) {
  switch (p) {
    case Postulate::kR1: return "psi o mu implies mu";
    case Postulate::kR2:
      return "if psi & mu is satisfiable then psi o mu <-> psi & mu";
    case Postulate::kR3:
      return "if mu is satisfiable then psi o mu is satisfiable";
    case Postulate::kR4:
      return "equivalent inputs give equivalent outputs";
    case Postulate::kR5: return "(psi o mu) & phi implies psi o (mu & phi)";
    case Postulate::kR6:
      return "if (psi o mu) & phi is satisfiable then psi o (mu & phi) "
             "implies (psi o mu) & phi";
    case Postulate::kU1: return "psi <> mu implies mu";
    case Postulate::kU2:
      return "if psi implies mu then psi <> mu is equivalent to psi";
    case Postulate::kU3:
      return "if psi and mu are satisfiable then psi <> mu is satisfiable";
    case Postulate::kU4:
      return "equivalent inputs give equivalent outputs";
    case Postulate::kU5:
      return "(psi <> mu) & phi implies psi <> (mu & phi)";
    case Postulate::kU6:
      return "if psi <> mu1 implies mu2 and psi <> mu2 implies mu1 then "
             "psi <> mu1 <-> psi <> mu2";
    case Postulate::kU7:
      return "if psi is a singleton then (psi <> mu1) & (psi <> mu2) "
             "implies psi <> (mu1 | mu2)";
    case Postulate::kU8:
      return "(psi1 | psi2) <> mu <-> (psi1 <> mu) | (psi2 <> mu)";
    case Postulate::kA1: return "psi |> mu implies mu";
    case Postulate::kA2:
      return "if psi is unsatisfiable then psi |> mu is unsatisfiable";
    case Postulate::kA3:
      return "if psi and mu are satisfiable then psi |> mu is satisfiable";
    case Postulate::kA4:
      return "equivalent inputs give equivalent outputs";
    case Postulate::kA5:
      return "(psi |> mu) & phi implies psi |> (mu & phi)";
    case Postulate::kA6:
      return "if (psi |> mu) & phi is satisfiable then psi |> (mu & phi) "
             "implies (psi |> mu) & phi";
    case Postulate::kA7:
      return "(psi1 |> mu) & (psi2 |> mu) implies (psi1 | psi2) |> mu";
    case Postulate::kA8:
      return "if (psi1 |> mu) & (psi2 |> mu) is satisfiable then "
             "(psi1 | psi2) |> mu implies (psi1 |> mu) & (psi2 |> mu)";
  }
  return "?";
}

std::vector<Postulate> RevisionPostulates() {
  return {Postulate::kR1, Postulate::kR2, Postulate::kR3,
          Postulate::kR4, Postulate::kR5, Postulate::kR6};
}

std::vector<Postulate> UpdatePostulates() {
  return {Postulate::kU1, Postulate::kU2, Postulate::kU3, Postulate::kU4,
          Postulate::kU5, Postulate::kU6, Postulate::kU7, Postulate::kU8};
}

std::vector<Postulate> FittingPostulates() {
  return {Postulate::kA1, Postulate::kA2, Postulate::kA3, Postulate::kA4,
          Postulate::kA5, Postulate::kA6, Postulate::kA7, Postulate::kA8};
}

std::vector<Postulate> AllPostulates() {
  std::vector<Postulate> out = RevisionPostulates();
  for (Postulate p : UpdatePostulates()) out.push_back(p);
  for (Postulate p : FittingPostulates()) out.push_back(p);
  return out;
}

}  // namespace arbiter
