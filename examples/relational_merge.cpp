// Relational arbitration — the paper's §5 open problem ("extend
// arbitration from propositional to first-order") in its decidable
// finite-domain form.  Two departments hold conflicting relational
// databases about project staffing; we ground their theories, impose
// relational integrity constraints, and arbitrate.
//
// Build & run:  ./build/examples/relational_merge

#include <cstdio>

#include "change/merge.h"
#include "fol/ground.h"
#include "kb/knowledge_base.h"
#include "logic/eval.h"
#include "logic/printer.h"

int main() {
  using namespace arbiter;

  // Domain: two engineers, two projects (as separate relations' args).
  fol::Grounder g({"ann", "bob"});
  ARBITER_CHECK(g.DeclareRelation("leads", 1).ok());    // leads(person)
  ARBITER_CHECK(g.DeclareRelation("on_call", 1).ok());  // on_call(person)
  ARBITER_CHECK(g.DeclareRelation("paired", 2).ok());   // paired(a, b)
  ARBITER_CHECK(g.MaterializeAtoms().ok());
  const int n = g.vocabulary().size();
  std::printf("grounded vocabulary (%d atoms):", n);
  for (const std::string& name : g.vocabulary().names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\n");

  // Engineering's record: Ann leads, Bob is on call, they pair up.
  Formula engineering = *g.Ground(
      "leads(ann) & !leads(bob) & on_call(bob) & paired(ann, bob)");
  // Operations' record: Bob leads and nobody is on call.
  Formula operations = *g.Ground(
      "leads(bob) & !leads(ann) & forall x. !on_call(x)");
  // Integrity: someone must lead, a leader is never on call, and
  // pairing is symmetric.
  Formula integrity = *g.Ground(
      "(exists x. leads(x)) & (forall x. leads(x) -> !on_call(x)) & "
      "(forall x. forall y. paired(x, y) -> paired(y, x))");

  ModelSet mod_eng = ModelSet::FromFormula(engineering, n);
  ModelSet mod_ops = ModelSet::FromFormula(operations, n);
  ModelSet mod_int = ModelSet::FromFormula(integrity, n);
  std::printf("engineering view: %zu worlds; operations view: %zu; "
              "integrity-compatible: %zu of %llu\n",
              mod_eng.size(), mod_ops.size(), mod_int.size(),
              static_cast<unsigned long long>(1) << n);

  for (MergeAggregate agg : {MergeAggregate::kSum, MergeAggregate::kGMax,
                             MergeAggregate::kMax}) {
    ModelSet merged = Merge({mod_eng, mod_ops}, mod_int, agg);
    KnowledgeBase kb = KnowledgeBase::FromModels(merged);
    std::printf("\n%-4s merge: %zu consensus world(s)\n",
                MergeAggregateName(agg), merged.size());
    std::printf("  as a formula: %s\n",
                ToString(kb.formula(), g.vocabulary()).c_str());
    // Answer relational queries against the consensus.
    for (const char* query :
         {"exists x. leads(x)", "leads(ann)", "leads(bob)",
          "exists x. on_call(x)"}) {
      Formula q = *g.Ground(query);
      bool in_all = true;
      bool in_some = false;
      for (uint64_t m : merged) {
        bool holds = Evaluate(q, m);
        in_all &= holds;
        in_some |= holds;
      }
      std::printf("  query %-22s : %s\n", query,
                  in_all ? "certain" : (in_some ? "possible" : "no"));
    }
  }
  return 0;
}
