// SAT-based operator benchmarks (experiment E8b): Dalal revision via
// distance binary search and max-arbitration via CEGAR, on
// vocabularies far beyond the enumeration limit, plus the
// enumeration/SAT crossover.

#include <benchmark/benchmark.h>

#include "change/fitting.h"
#include "change/revision.h"
#include "logic/generator.h"
#include "model/model_set.h"
#include "solve/arbitration_sat.h"
#include "solve/dalal_sat.h"
#include "util/bit.h"

namespace {

using namespace arbiter;

void BM_SatDalalRevise(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n * 3);
  Formula psi = RandomKCnf(&rng, n, 2 * n, 3);
  Formula mu = RandomKCnf(&rng, n, 2 * n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solve::SatDalalRevise(psi, mu, n, /*max_models=*/1));
  }
}
BENCHMARK(BM_SatDalalRevise)
    ->Arg(12)
    ->Arg(20)
    ->Arg(28)
    ->Arg(36)
    ->Unit(benchmark::kMillisecond);

void BM_CegarArbitrationRandom(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n * 5);
  Formula a = RandomKCnf(&rng, n, 2 * n, 3);
  Formula b = RandomKCnf(&rng, n, 2 * n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solve::CegarMaxArbitration(a, b, n, /*max_models=*/1));
  }
}
BENCHMARK(BM_CegarArbitrationRandom)
    ->Arg(10)
    ->Arg(12)
    ->Arg(14)
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);

void BM_CegarArbitrationStructured(benchmark::State& state) {
  // Two conjunction platforms disagreeing on half the issues: the
  // regime where CEGAR shines (witness set of size ~2).
  const int n = static_cast<int>(state.range(0));
  std::vector<Formula> lits_a, lits_b;
  for (int i = 0; i < n; ++i) {
    lits_a.push_back(Not(Formula::Var(i)));
    lits_b.push_back(i >= n / 2 ? Formula::Var(i) : Not(Formula::Var(i)));
  }
  Formula a = And(lits_a);
  Formula b = And(lits_b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solve::CegarMaxArbitration(a, b, n, /*max_models=*/1));
  }
}
BENCHMARK(BM_CegarArbitrationStructured)
    ->Arg(16)
    ->Arg(24)
    ->Arg(32)
    ->Arg(40)
    ->Unit(benchmark::kMillisecond);

void BM_EnumDalalCrossover(benchmark::State& state) {
  // The enumeration arm of the crossover: Mod(ψ), Mod(μ) computed by
  // truth table, then the polynomial scan.  Compare with
  // BM_SatDalalRevise at equal n to locate the crossover point.
  const int n = static_cast<int>(state.range(0));
  Rng rng(n * 3);
  Formula psi = RandomKCnf(&rng, n, 2 * n, 3);
  Formula mu = RandomKCnf(&rng, n, 2 * n, 3);
  DalalRevision op;
  for (auto _ : state) {
    ModelSet spsi = ModelSet::FromFormula(psi, n);
    ModelSet smu = ModelSet::FromFormula(mu, n);
    benchmark::DoNotOptimize(op.Change(spsi, smu));
  }
}
BENCHMARK(BM_EnumDalalCrossover)
    ->Arg(12)
    ->Arg(16)
    ->Arg(20)
    ->Unit(benchmark::kMillisecond);

void BM_SatOverallDist(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n * 7);
  Formula psi = RandomKCnf(&rng, n, 2 * n, 3);
  uint64_t point = rng.Next() & LowMask(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve::SatOverallDist(psi, n, point));
  }
}
BENCHMARK(BM_SatOverallDist)->Arg(12)->Arg(20)->Arg(28);

}  // namespace
