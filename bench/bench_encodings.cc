// Ablation: sequential-counter (UnaryCounter) vs totalizer cardinality
// encodings — the design choice behind the distance bounds in
// src/solve/.  Measures encoding size (variables/clauses added) and
// solve time for "find an assignment at Hamming distance exactly k
// from a random 3-CNF model".

#include <benchmark/benchmark.h>

#include "enc/cardinality.h"
#include "enc/totalizer.h"
#include "enc/tseitin.h"
#include "logic/generator.h"
#include "solve/sat_bridge.h"
#include "util/bit.h"

namespace {

using namespace arbiter;
using sat::Lit;
using sat::Solver;
using sat::SolveStatus;

template <typename Counter>
void RunDistanceProbe(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n * 11);
  Formula psi = RandomKCnf(&rng, n, 2 * n, 3);
  uint64_t point = rng.Next() & LowMask(n);
  int64_t vars = 0, clauses = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Solver solver;
    enc::TseitinEncoder encoder(&solver);
    encoder.ReserveInputVars(n);
    encoder.Assert(psi);
    int vars_before = solver.NumVars();
    int clauses_before = solver.NumProblemClauses();
    Counter counter(&solver, solve::MakeConstDiffLits(n, point));
    vars += solver.NumVars() - vars_before;
    clauses += solver.NumProblemClauses() - clauses_before;
    state.ResumeTiming();
    // Sweep every threshold: the workload pattern of the binary
    // searches in src/solve/.
    for (int k = 1; k <= counter.size(); ++k) {
      benchmark::DoNotOptimize(
          solver.SolveAssuming({counter.AtLeast(k)}));
    }
  }
  state.counters["enc_vars"] = benchmark::Counter(
      static_cast<double>(vars), benchmark::Counter::kAvgIterations);
  state.counters["enc_clauses"] = benchmark::Counter(
      static_cast<double>(clauses), benchmark::Counter::kAvgIterations);
}

void BM_SequentialCounterDistanceProbe(benchmark::State& state) {
  RunDistanceProbe<enc::UnaryCounter>(state);
}
BENCHMARK(BM_SequentialCounterDistanceProbe)->Arg(16)->Arg(24)->Arg(32);

void BM_TotalizerDistanceProbe(benchmark::State& state) {
  RunDistanceProbe<enc::Totalizer>(state);
}
BENCHMARK(BM_TotalizerDistanceProbe)->Arg(16)->Arg(24)->Arg(32);

template <typename Counter>
void RunExactlyK(benchmark::State& state) {
  // Count assignments of n free variables with exactly k true, via
  // blocking-clause enumeration: stresses the encoding's propagation.
  const int n = static_cast<int>(state.range(0));
  const int k = n / 2;
  for (auto _ : state) {
    Solver solver;
    std::vector<Lit> lits;
    for (int i = 0; i < n; ++i) lits.push_back(Lit::Pos(solver.NewVar()));
    Counter counter(&solver, lits);
    solver.AddUnit(counter.AtLeast(k));
    if (k < n) solver.AddUnit(counter.AtMost(k));
    int64_t models = 0;
    while (solver.Solve() == SolveStatus::kSat && models < 500) {
      ++models;
      std::vector<Lit> block;
      for (int i = 0; i < n; ++i) {
        block.push_back(Lit(i, solver.ModelValue(i)));
      }
      if (!solver.AddClause(std::move(block))) break;
    }
    benchmark::DoNotOptimize(models);
  }
}

void BM_SequentialExactlyHalf(benchmark::State& state) {
  RunExactlyK<enc::UnaryCounter>(state);
}
BENCHMARK(BM_SequentialExactlyHalf)->Arg(10)->Arg(14);

void BM_TotalizerExactlyHalf(benchmark::State& state) {
  RunExactlyK<enc::Totalizer>(state);
}
BENCHMARK(BM_TotalizerExactlyHalf)->Arg(10)->Arg(14);

}  // namespace
