#include "enc/tseitin.h"

#include <vector>

namespace arbiter::enc {

using sat::Lit;

void TseitinEncoder::ReserveInputVars(int n) {
  while (solver_->NumVars() < n) solver_->NewVar();
}

Lit TseitinEncoder::FreshLit() { return Lit::Pos(solver_->NewVar()); }

Lit TseitinEncoder::EncodeVar(int var) {
  ReserveInputVars(var + 1);
  return Lit::Pos(var);
}

Lit TseitinEncoder::Encode(const Formula& f) {
  auto it = cache_.find(f.NodeId());
  if (it != cache_.end()) return it->second;

  Lit out;
  switch (f.kind()) {
    case FormulaKind::kTrue: {
      out = FreshLit();
      solver_->AddUnit(out);
      break;
    }
    case FormulaKind::kFalse: {
      out = FreshLit();
      solver_->AddUnit(~out);
      break;
    }
    case FormulaKind::kVar:
      out = EncodeVar(f.var());
      break;
    case FormulaKind::kNot:
      out = ~Encode(f.child(0));
      break;
    case FormulaKind::kAnd: {
      std::vector<Lit> parts;
      parts.reserve(f.num_children());
      for (const Formula& c : f.children()) parts.push_back(Encode(c));
      out = FreshLit();
      // out -> part_i ; (all parts) -> out
      std::vector<Lit> big;
      big.reserve(parts.size() + 1);
      for (Lit p : parts) {
        solver_->AddBinary(~out, p);
        big.push_back(~p);
      }
      big.push_back(out);
      solver_->AddClause(std::move(big));
      break;
    }
    case FormulaKind::kOr: {
      std::vector<Lit> parts;
      parts.reserve(f.num_children());
      for (const Formula& c : f.children()) parts.push_back(Encode(c));
      out = FreshLit();
      // part_i -> out ; out -> (some part)
      std::vector<Lit> big;
      big.reserve(parts.size() + 1);
      for (Lit p : parts) {
        solver_->AddBinary(~p, out);
        big.push_back(p);
      }
      big.push_back(~out);
      solver_->AddClause(std::move(big));
      break;
    }
    case FormulaKind::kImplies: {
      Lit a = Encode(f.child(0));
      Lit b = Encode(f.child(1));
      out = FreshLit();
      // out <-> (!a | b)
      solver_->AddTernary(~out, ~a, b);
      solver_->AddBinary(out, a);
      solver_->AddBinary(out, ~b);
      break;
    }
    case FormulaKind::kIff: {
      Lit a = Encode(f.child(0));
      Lit b = Encode(f.child(1));
      out = FreshLit();
      // out <-> (a <-> b)
      solver_->AddTernary(~out, ~a, b);
      solver_->AddTernary(~out, a, ~b);
      solver_->AddTernary(out, a, b);
      solver_->AddTernary(out, ~a, ~b);
      break;
    }
    case FormulaKind::kXor: {
      Lit a = Encode(f.child(0));
      Lit b = Encode(f.child(1));
      out = FreshLit();
      // out <-> (a xor b)
      solver_->AddTernary(~out, a, b);
      solver_->AddTernary(~out, ~a, ~b);
      solver_->AddTernary(out, ~a, b);
      solver_->AddTernary(out, a, ~b);
      break;
    }
  }
  cache_.emplace(f.NodeId(), out);
  return out;
}

bool TseitinEncoder::Assert(const Formula& f) {
  Lit l = Encode(f);
  return solver_->AddUnit(l);
}

}  // namespace arbiter::enc
