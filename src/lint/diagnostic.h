#ifndef ARBITER_LINT_DIAGNOSTIC_H_
#define ARBITER_LINT_DIAGNOSTIC_H_

#include <string>
#include <vector>

/// \file diagnostic.h
/// The diagnostics engine behind arblint: a location-carrying finding
/// type plus text and JSON renderers.  Checks are identified by stable
/// string ids ("script/undo-empty", "dimacs/unused-var", ...) so CI
/// configurations and the fixture corpus can pin them.

namespace arbiter::lint {

/// How bad a finding is.  Orderable: kError > kWarning > kNote.
enum class Severity {
  kNote = 0,     ///< informational; never affects exit codes
  kWarning = 1,  ///< suspicious but executable (error under --werror)
  kError = 2,    ///< the artifact is broken; executing it would fail
};

/// Short lowercase name ("note", "warning", "error").
const char* SeverityName(Severity severity);

/// One finding, anchored to a source location.
struct Diagnostic {
  std::string file;       ///< input path ("<stdin>" when piped)
  int line = 0;           ///< 1-based; 0 anchors to the whole file
  int col = 1;            ///< 1-based column of the offending token
  Severity severity = Severity::kWarning;
  std::string check_id;   ///< stable id, e.g. "script/use-before-define"
  std::string message;    ///< what is wrong
  std::string note;       ///< optional context or suggested fix

  /// "file:line:col: severity: message [check_id]" (+ "  note: ...").
  std::string ToString() const;
};

/// Renders diagnostics one per line, GCC style, ready for a terminal.
std::string RenderText(const std::vector<Diagnostic>& diagnostics);

/// Renders diagnostics as a JSON array of objects with keys
/// {file, line, col, severity, check_id, message, note}.  The schema is
/// documented in docs/LINTING.md.
std::string RenderJson(const std::vector<Diagnostic>& diagnostics);

/// The highest severity present (kNote when empty).
Severity MaxSeverity(const std::vector<Diagnostic>& diagnostics);

/// Counts diagnostics at exactly `severity`.
int CountAtSeverity(const std::vector<Diagnostic>& diagnostics,
                    Severity severity);

}  // namespace arbiter::lint

#endif  // ARBITER_LINT_DIAGNOSTIC_H_
