#ifndef ARBITER_POSTULATES_WEIGHTED_CHECKER_H_
#define ARBITER_POSTULATES_WEIGHTED_CHECKER_H_

#include <optional>
#include <string>

#include "change/weighted.h"

/// \file weighted_checker.h
/// Checkers for the weighted model-fitting postulates (F1)–(F8)
/// (paper, Section 4): the (A1)–(A8) axioms with regular knowledge
/// bases replaced by weighted ones, ∧ read as pointwise min and ∨ as
/// pointwise sum, implication as pointwise <=.
///
/// The space of weighted bases is infinite, so exhaustiveness is only
/// available for the 0/1-weight fragment (which embeds the plain
/// case); beyond that the checker samples random weight vectors.

namespace arbiter {

enum class WeightedPostulate { kF1, kF2, kF3, kF4, kF5, kF6, kF7, kF8 };

/// "F1" ... "F8".
std::string WeightedPostulateName(WeightedPostulate p);

/// A found violation, rendered for diagnostics.
struct WeightedCounterexample {
  WeightedPostulate postulate;
  std::string description;
};

class WeightedPostulateChecker {
 public:
  /// `op` must outlive the checker.
  WeightedPostulateChecker(const WeightedChangeOperator* op, int num_terms);

  /// Exhaustive over all 0/1-weight bases; requires num_terms <= 2
  /// (3-argument postulates loop over 2^(3*2^n) tuples).
  std::optional<WeightedCounterexample> CheckExhaustiveBinary(
      WeightedPostulate p);

  /// Randomized check over `num_samples` tuples of weighted bases with
  /// weights drawn from a small positive palette (plus zeros).
  std::optional<WeightedCounterexample> CheckSampled(WeightedPostulate p,
                                                     int num_samples,
                                                     uint64_t seed);

 private:
  bool Holds(WeightedPostulate p, const WeightedKnowledgeBase& psi1,
             const WeightedKnowledgeBase& psi2,
             const WeightedKnowledgeBase& mu,
             const WeightedKnowledgeBase& mu2,
             const WeightedKnowledgeBase& phi, std::string* what) const;

  const WeightedChangeOperator* op_;
  int num_terms_;
};

}  // namespace arbiter

#endif  // ARBITER_POSTULATES_WEIGHTED_CHECKER_H_
