#ifndef ARBITER_STORE_SCRIPT_H_
#define ARBITER_STORE_SCRIPT_H_

#include <functional>
#include <string>
#include <vector>

#include "store/belief_store.h"

/// \file script.h
/// Belief scripts: a small line-based language for scripting and
/// regression-testing theory change over a BeliefStore.  A script is a
/// sequence of statements, one per line ('#' starts a comment):
///
///   define <base> := <formula>
///   change <base> by <operator> with <formula>
///   undo <base>
///   assert <base> entails <formula>
///   assert <base> consistent-with <formula>
///   assert <base> equivalent-to <formula>
///   if <base> entails <formula> then <statement>
///   set backend <name>
///   set weight <term> <integer>
///
/// `set backend` selects the store's distance backend ("enum" or
/// "counting"); `set weight` assigns a per-term metric weight (the
/// distance becomes weighted Hamming).
///
/// Scripts parse to a statement list and run against a store; the run
/// report records each executed statement, failed assertions, and
/// errors.  Typical use: check in a `.belief` script next to a
/// knowledge base and run it in CI — "belief regression tests".

namespace arbiter {

/// One parsed statement.
struct ScriptStatement {
  enum class Kind {
    kDefine,
    kChange,
    kUndo,
    kAssertEntails,
    kAssertConsistent,
    kAssertEquivalent,
    kConditional,
    kSetBackend,
    kSetWeight,
  };
  Kind kind;
  int line = 0;           ///< 1-based source line
  std::string base;       ///< target base name; kSetWeight: the term
  std::string op_name;    ///< kChange only
  std::string formula;    ///< payload formula text; kSetBackend: the
                          ///< backend name; kSetWeight: the weight
  /// kConditional: the guard is (base entails formula); `inner` holds
  /// the guarded statement.
  std::vector<ScriptStatement> inner;
};

/// A parsed script.
struct BeliefScript {
  std::vector<ScriptStatement> statements;
};

/// Outcome of one executed statement.
struct ScriptStepResult {
  int line = 0;
  std::string text;   ///< what ran, e.g. "assert jury entails g"
  bool ok = false;    ///< executed without error and assertion held
  bool skipped = false;  ///< guarded statement whose condition was false
  std::string detail;    ///< error or assertion-failure description
  /// Static-analysis findings anchored on this statement, supplied by
  /// the lint hook passed to RunScript (rendered diagnostic lines).
  std::vector<std::string> lint;
};

/// Outcome of a full run.
struct ScriptReport {
  std::vector<ScriptStepResult> steps;
  int failures = 0;

  bool AllPassed() const { return failures == 0; }
  std::string ToString() const;
};

/// Parses script text.  Syntax errors carry line numbers.
Result<BeliefScript> ParseScript(const std::string& text);

/// Canonical one-line rendering of a statement — exactly the `text`
/// RunScript records in its step results, so static analyses can match
/// their verdicts against concrete run reports.
std::string RenderStatement(const ScriptStatement& stmt);

/// Statement-level lint hook: given a top-level statement about to run,
/// returns rendered diagnostic lines to attach to its step result.
/// src/lint/lint.h provides MakeScriptLintHook; the store layer only
/// defines the injection point so it stays independent of the linter.
using ScriptLintHook =
    std::function<std::vector<std::string>(const ScriptStatement&)>;

/// Runs a script against a store (mutating it).  Execution continues
/// past failed assertions (they are recorded); it stops on the first
/// hard error (unknown base/operator, parse error in a formula).  A
/// non-null `lint_hook` is consulted once per top-level statement and
/// its findings are attached to that statement's step result.
ScriptReport RunScript(const BeliefScript& script, BeliefStore* store,
                       const ScriptLintHook& lint_hook = nullptr);

/// Convenience: parse and run in one go.
Result<ScriptReport> RunScriptText(const std::string& text,
                                   BeliefStore* store);

}  // namespace arbiter

#endif  // ARBITER_STORE_SCRIPT_H_
