#ifndef ARBITER_MODEL_PREORDER_H_
#define ARBITER_MODEL_PREORDER_H_

#include <functional>
#include <vector>

#include "model/model_set.h"

/// \file preorder.h
/// Total pre-orders ≤ψ over the interpretation space, and the Min
/// operation from the paper's characterization theorems:
///
///   Min(S, ≤ψ) = { I ∈ S : ¬∃ I' ∈ S. I' <ψ I }.
///
/// A total pre-order is represented by a rank function: I ≤ J iff
/// rank(I) <= rank(J).  Every total pre-order over a finite space has
/// such a representation, and all of the paper's concrete assignments
/// (dist, odist, wdist) arrive naturally as ranks.

namespace arbiter {

/// Rank function over interpretation bitmasks; smaller is closer.
using RankFn = std::function<double(uint64_t)>;

/// A materialized total pre-order over all 2^n interpretations.
class TotalPreorder {
 public:
  /// Materializes rank(I) for all I over n terms (n <= kMaxEnumTerms).
  TotalPreorder(int num_terms, const RankFn& rank);

  int num_terms() const { return num_terms_; }

  double Rank(uint64_t bits) const { return ranks_[bits]; }

  /// I ≤ J.
  bool Leq(uint64_t i, uint64_t j) const { return ranks_[i] <= ranks_[j]; }
  /// I < J  (I ≤ J and not J ≤ I).
  bool Less(uint64_t i, uint64_t j) const { return ranks_[i] < ranks_[j]; }
  /// I ≈ J (equally ranked).
  bool Equiv(uint64_t i, uint64_t j) const { return ranks_[i] == ranks_[j]; }

  /// Min(S, ≤): the subset of S with no strictly smaller element in S.
  ModelSet MinOf(const ModelSet& s) const;

 private:
  int num_terms_;
  std::vector<double> ranks_;
};

/// One-shot Min(S, rank) without materializing the full space.
ModelSet MinBy(const ModelSet& s, const RankFn& rank);

/// Integer-rank variant to avoid double rounding for distance ranks.
ModelSet MinByInt(const ModelSet& s,
                  const std::function<int64_t(uint64_t)>& rank);

}  // namespace arbiter

#endif  // ARBITER_MODEL_PREORDER_H_
