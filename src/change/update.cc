#include "change/update.h"

#include <utility>
#include <vector>

#include "model/distance.h"

namespace arbiter {

ModelSet WinslettUpdate::Change(const ModelSet& psi,
                                const ModelSet& mu) const {
  ARBITER_CHECK(psi.num_terms() == mu.num_terms());
  std::vector<uint64_t> result;
  for (uint64_t i : psi) {
    for (uint64_t j : mu) {
      uint64_t diff = i ^ j;
      bool dominated = false;
      for (uint64_t j2 : mu) {
        uint64_t diff2 = i ^ j2;
        if (diff2 != diff && (diff2 & diff) == diff2) {
          dominated = true;
          break;
        }
      }
      if (!dominated) result.push_back(j);
    }
  }
  return ModelSet::FromMasks(std::move(result), mu.num_terms());
}

ForbusUpdate::ForbusUpdate(std::vector<int64_t> metric)
    : semantics_(MinSemantics(std::move(metric))) {}

ModelSet ForbusUpdate::Change(const ModelSet& psi,
                              const ModelSet& mu) const {
  ARBITER_CHECK(psi.num_terms() == mu.num_terms());
  std::vector<uint64_t> result;
  for (uint64_t i : psi) {
    // Min(Mod(μ), metric-dist(I, ·)).
    int64_t best = MetricDiameter(semantics_, mu.num_terms()) + 1;
    for (uint64_t j : mu) {
      best = std::min(best, MetricDist(semantics_, i, j));
    }
    for (uint64_t j : mu) {
      if (MetricDist(semantics_, i, j) == best) result.push_back(j);
    }
  }
  return ModelSet::FromMasks(std::move(result), mu.num_terms());
}

}  // namespace arbiter
