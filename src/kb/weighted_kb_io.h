#ifndef ARBITER_KB_WEIGHTED_KB_IO_H_
#define ARBITER_KB_WEIGHTED_KB_IO_H_

#include <string>

#include "kb/weighted_kb.h"
#include "util/status.h"

/// \file weighted_kb_io.h
/// A line-based text format for weighted knowledge bases (paper,
/// Section 4), so weighted workloads can be checked in next to belief
/// scripts and linted/loaded without code:
///
///   wkb <num_terms>          # header; num_terms in [1, kMaxEnumTerms]
///   # comment
///   <bits> <weight>          # one support entry per line
///
/// `bits` is the interpretation's bitmask (term i == bit i) in decimal;
/// `weight` is a nonnegative finite double.  Interpretations not listed
/// have weight 0.  A later entry for the same interpretation overwrites
/// the earlier one (arblint warns about such duplicates).

namespace arbiter {

/// Parses wkb text.  Errors carry 1-based line numbers.
Result<WeightedKnowledgeBase> ParseWeightedKb(const std::string& text);

/// Renders the support of `base` in the wkb format (round-trips through
/// ParseWeightedKb).
std::string ToWkbText(const WeightedKnowledgeBase& base);

}  // namespace arbiter

#endif  // ARBITER_KB_WEIGHTED_KB_IO_H_
