// Tests for weighted knowledge bases (paper, Section 4): the ⊔/⊓
// algebra, embedding of plain bases, satisfiability, implication,
// wdist, and the weighted Min.

#include "kb/weighted_kb.h"

#include <gtest/gtest.h>

#include "logic/parser.h"
#include "util/bit.h"
#include "util/random.h"

namespace arbiter {
namespace {

TEST(WeightedKbTest, ZeroByDefault) {
  WeightedKnowledgeBase kb(2);
  for (uint64_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(kb.Weight(i), 0.0);
  EXPECT_FALSE(kb.IsSatisfiable());
}

TEST(WeightedKbTest, EmbeddingIsZeroOne) {
  // Paper: psi~(I) = 1 iff I ∈ Mod(psi), else 0.
  Vocabulary v = Vocabulary::Synthetic(2);
  Formula f = MustParse("p0 | p1", &v);
  WeightedKnowledgeBase kb = WeightedKnowledgeBase::FromFormula(f, 2);
  EXPECT_DOUBLE_EQ(kb.Weight(0b00), 0.0);
  EXPECT_DOUBLE_EQ(kb.Weight(0b01), 1.0);
  EXPECT_DOUBLE_EQ(kb.Weight(0b10), 1.0);
  EXPECT_DOUBLE_EQ(kb.Weight(0b11), 1.0);
}

TEST(WeightedKbTest, UniformIsTheFullSpace) {
  WeightedKnowledgeBase m = WeightedKnowledgeBase::Uniform(3, 2.5);
  for (uint64_t i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(m.Weight(i), 2.5);
}

TEST(WeightedKbTest, OrIsPointwiseSum) {
  WeightedKnowledgeBase a(2), b(2);
  a.SetWeight(0, 3);
  a.SetWeight(1, 1);
  b.SetWeight(1, 2);
  WeightedKnowledgeBase c = a.Or(b);
  EXPECT_DOUBLE_EQ(c.Weight(0), 3);
  EXPECT_DOUBLE_EQ(c.Weight(1), 3);
  EXPECT_DOUBLE_EQ(c.Weight(2), 0);
}

TEST(WeightedKbTest, AndIsPointwiseMin) {
  WeightedKnowledgeBase a(2), b(2);
  a.SetWeight(0, 3);
  a.SetWeight(1, 1);
  b.SetWeight(0, 2);
  b.SetWeight(2, 5);
  WeightedKnowledgeBase c = a.And(b);
  EXPECT_DOUBLE_EQ(c.Weight(0), 2);
  EXPECT_DOUBLE_EQ(c.Weight(1), 0);
  EXPECT_DOUBLE_EQ(c.Weight(2), 0);
}

TEST(WeightedKbTest, AlgebraLaws) {
  Rng rng(44);
  auto random_kb = [&](int n) {
    WeightedKnowledgeBase kb(n);
    for (uint64_t i = 0; i < (1ULL << n); ++i) {
      if (rng.NextBool()) kb.SetWeight(i, rng.NextBelow(10));
    }
    return kb;
  };
  for (int round = 0; round < 30; ++round) {
    WeightedKnowledgeBase a = random_kb(3);
    WeightedKnowledgeBase b = random_kb(3);
    WeightedKnowledgeBase c = random_kb(3);
    EXPECT_TRUE(a.Or(b).EquivalentTo(b.Or(a)));
    EXPECT_TRUE(a.And(b).EquivalentTo(b.And(a)));
    EXPECT_TRUE(a.Or(b.Or(c)).EquivalentTo(a.Or(b).Or(c)));
    EXPECT_TRUE(a.And(b.And(c)).EquivalentTo(a.And(b).And(c)));
    // And(a, a) = a but Or(a, a) = 2a: ∨ is a sum, not idempotent.
    EXPECT_TRUE(a.And(a).EquivalentTo(a));
    if (a.IsSatisfiable()) {
      EXPECT_FALSE(a.Or(a).EquivalentTo(a));
    }
    // a ∧ b implies a implies a ∨ b.
    EXPECT_TRUE(a.And(b).Implies(a));
    EXPECT_TRUE(a.Implies(a.Or(b)));
  }
}

TEST(WeightedKbTest, ImplicationIsPointwise) {
  WeightedKnowledgeBase a(1), b(1);
  a.SetWeight(0, 1);
  b.SetWeight(0, 2);
  b.SetWeight(1, 1);
  EXPECT_TRUE(a.Implies(b));
  EXPECT_FALSE(b.Implies(a));
  EXPECT_TRUE(a.Implies(a));
}

TEST(WeightedKbTest, SupportListsPositiveWeights) {
  WeightedKnowledgeBase kb(2);
  kb.SetWeight(1, 0.5);
  kb.SetWeight(3, 7);
  EXPECT_EQ(kb.Support(), ModelSet::FromMasks({1, 3}, 2));
}

TEST(WeightedKbTest, WdistMatchesDefinition) {
  // wdist(psi~, I) = Σ_J dist(I,J)·psi~(J).
  WeightedKnowledgeBase kb(3);
  kb.SetWeight(0b001, 10);
  kb.SetWeight(0b010, 20);
  kb.SetWeight(0b111, 5);
  EXPECT_DOUBLE_EQ(kb.WeightedDistTo(0b010), 30.0);  // paper Example 4.1
  EXPECT_DOUBLE_EQ(kb.WeightedDistTo(0b011), 35.0);
  EXPECT_DOUBLE_EQ(kb.WeightedDistTo(0b001), 0 + 2 * 20 + 2 * 5);
}

TEST(WeightedKbTest, WdistOfUnionIsSumOfWdists) {
  // The weighted loyalty linchpin: ∨ adds weights, so wdist is additive
  // — unlike the plain union semantics (see loyal_test.cc).
  Rng rng(7);
  for (int round = 0; round < 30; ++round) {
    WeightedKnowledgeBase a(3), b(3);
    for (uint64_t i = 0; i < 8; ++i) {
      if (rng.NextBool()) a.SetWeight(i, rng.NextBelow(5));
      if (rng.NextBool()) b.SetWeight(i, rng.NextBelow(5));
    }
    for (uint64_t x = 0; x < 8; ++x) {
      EXPECT_DOUBLE_EQ(a.Or(b).WeightedDistTo(x),
                       a.WeightedDistTo(x) + b.WeightedDistTo(x));
    }
  }
}

TEST(WeightedKbTest, MinimalByKeepsWeightsOnMinima) {
  WeightedKnowledgeBase mu(2);
  mu.SetWeight(0b00, 4);
  mu.SetWeight(0b11, 9);
  // Order by popcount: minimum of the support is 0b00.
  TotalPreorder order(2, [](uint64_t m) {
    return static_cast<double>(PopCount(m));
  });
  WeightedKnowledgeBase result = mu.MinimalBy(order);
  EXPECT_DOUBLE_EQ(result.Weight(0b00), 4);  // original weight kept
  EXPECT_DOUBLE_EQ(result.Weight(0b11), 0);
}

TEST(WeightedKbTest, MinimalByOfEmptyIsEmpty) {
  WeightedKnowledgeBase empty(2);
  TotalPreorder order(2, [](uint64_t) { return 0.0; });
  EXPECT_FALSE(empty.MinimalBy(order).IsSatisfiable());
}

TEST(WeightedKbTest, NegativeWeightRejected) {
  WeightedKnowledgeBase kb(1);
  EXPECT_DEATH(kb.SetWeight(0, -1.0), "nonnegative");
}

TEST(WeightedKbTest, ToStringShowsSupport) {
  auto v = Vocabulary::FromNames({"S", "D"}).ValueOrDie();
  WeightedKnowledgeBase kb(2);
  kb.SetWeight(0b01, 10);
  EXPECT_EQ(kb.ToString(v), "{{S}:10}");
}

TEST(WeightedKbTest, ToStringHugeWeightAvoidsIntegralCast) {
  // Regression: an integral-valued weight beyond int64_t range used to
  // be cast to int64_t (undefined behavior).  It must take the plain
  // double path instead.
  auto v = Vocabulary::FromNames({"S", "D"}).ValueOrDie();
  WeightedKnowledgeBase kb(2);
  kb.SetWeight(0b10, 1e300);
  EXPECT_EQ(kb.ToString(v), "{{D}:" + std::to_string(1e300) + "}");
  // The largest double below 2^63 still trims to an integer...
  WeightedKnowledgeBase in_range(2);
  in_range.SetWeight(0b01, 4611686018427387904.0);  // 2^62
  EXPECT_EQ(in_range.ToString(v), "{{S}:4611686018427387904}");
  // ... and 2^63 itself (not representable as int64_t) does not.
  WeightedKnowledgeBase at_edge(2);
  at_edge.SetWeight(0b01, 9223372036854775808.0);  // 2^63
  EXPECT_EQ(at_edge.ToString(v),
            "{{S}:" + std::to_string(9223372036854775808.0) + "}");
}

}  // namespace
}  // namespace arbiter
