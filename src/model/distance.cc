#include "model/distance.h"

#include <algorithm>
#include <array>

#include "util/logging.h"
#include "util/parallel.h"

namespace arbiter {

int MinDist(const ModelSet& psi, uint64_t interpretation) {
  ARBITER_CHECK_MSG(!psi.empty(), "MinDist over empty model set");
  int best = psi.num_terms() + 1;
  for (uint64_t j : psi) {
    best = std::min(best, Dist(interpretation, j));
    if (best == 0) break;
  }
  return best;
}

int OverallDist(const ModelSet& psi, uint64_t interpretation) {
  ARBITER_CHECK_MSG(!psi.empty(), "OverallDist over empty model set");
  const int diameter = psi.num_terms();
  int worst = -1;
  for (uint64_t j : psi) {
    worst = std::max(worst, Dist(interpretation, j));
    if (worst == diameter) break;  // nothing can be farther
  }
  return worst;
}

int OverallDistBounded(const ModelSet& psi, uint64_t interpretation,
                       int bound) {
  ARBITER_CHECK_MSG(!psi.empty(), "OverallDist over empty model set");
  const int diameter = psi.num_terms();
  int worst = -1;
  for (uint64_t j : psi) {
    worst = std::max(worst, Dist(interpretation, j));
    if (worst >= bound || worst == diameter) break;
  }
  return worst;
}

int64_t SumDist(const ModelSet& psi, uint64_t interpretation) {
  int64_t total = 0;
  for (uint64_t j : psi) {
    total += Dist(interpretation, j);
  }
  return total;
}

int64_t SumDistBounded(const ModelSet& psi, uint64_t interpretation,
                       int64_t bound) {
  int64_t total = 0;
  for (uint64_t j : psi) {
    total += Dist(interpretation, j);
    if (total >= bound) break;
  }
  return total;
}

SumDistOracle::SumDistOracle(const ModelSet& psi)
    : SumDistOracle(psi, /*metric=*/{}) {}

SumDistOracle::SumDistOracle(const ModelSet& psi,
                             const std::vector<int64_t>& metric)
    : num_terms_(psi.num_terms()),
      size_(static_cast<int64_t>(psi.size())) {
  ARBITER_CHECK_MSG(!psi.empty(),
                    "SumDistOracle over empty model set: column counts "
                    "would be meaningless (sdist undefined for "
                    "unsatisfiable psi)");
  for (int b = 0; b < num_terms_; ++b) {
    const int64_t w = b < static_cast<int>(metric.size()) ? metric[b] : 1;
    ARBITER_CHECK_MSG(w >= 0, "negative metric weight");
    weights_[b] = w;
  }
  using Counts = std::array<int64_t, kMaxEnumTerms>;
  constexpr uint64_t kGrain = 4096;
  const Counts counts = ParallelReduce<Counts>(
      0, psi.size(), kGrain, Counts{},
      [&psi, n = num_terms_](uint64_t lo, uint64_t hi) {
        Counts part{};
        for (uint64_t idx = lo; idx < hi; ++idx) {
          const uint64_t j = psi[idx];
          for (int b = 0; b < n; ++b) part[b] += (j >> b) & 1;
        }
        return part;
      },
      [](Counts acc, const Counts& part) {
        for (size_t b = 0; b < acc.size(); ++b) acc[b] += part[b];
        return acc;
      });
  for (int b = 0; b < num_terms_; ++b) ones_[b] = counts[b];
}

}  // namespace arbiter
