#include "proof/certify.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace arbiter::proof {

namespace {

// Atomics, not plain ints: CertificationEnabled() is read from server
// sessions and pool workers while a test (or an embedding process) may
// toggle the override — the thread-safety annotation pass flagged the
// old plain-int globals as unguarded shared state.  Relaxed ordering
// suffices; the toggle carries no data besides itself.
std::atomic<int> g_certify_override{-1};  // -1 env, 0 off, 1 on
std::atomic<bool> g_force_failure{false};

}  // namespace

bool CertificationEnabled() {
  const int override_state = g_certify_override.load(std::memory_order_relaxed);
  if (override_state >= 0) return override_state != 0;
  const char* env = std::getenv("ARBITER_CERTIFY");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

void SetCertificationEnabled(bool enabled) {
  g_certify_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void ClearCertificationOverride() {
  g_certify_override.store(-1, std::memory_order_relaxed);
}

void SetCertificationFailureForTesting(bool force_fail) {
  g_force_failure.store(force_fail, std::memory_order_relaxed);
}

CertifyingSolver::CertifyingSolver(bool enabled) : enabled_(enabled) {
  if (enabled_) pp_.SetProofLog(&recorder_);
}

bool CertifyingSolver::AddClause(std::vector<sat::Lit> lits) {
  if (enabled_) formula_.push_back(lits);
  return pp_.AddClause(std::move(lits));
}

sat::SolveStatus CertifyingSolver::Solve() {
  last_assumptions_.clear();
  return pp_.Solve();
}

sat::SolveStatus CertifyingSolver::SolveAssuming(
    const std::vector<sat::Lit>& assumptions) {
  last_assumptions_ = assumptions;
  return pp_.SolveAssuming(assumptions);
}

std::vector<ProofStep> CertifyingSolver::BuildProof() const {
  std::vector<ProofStep> proof = recorder_.steps();
  if (!recorder_.HasEmptyClause()) {
    proof.push_back(ProofStep{false, {}});
  }
  return proof;
}

CertifyOutcome CertifyingSolver::CertifyLastUnsat() {
  CertifyOutcome outcome;
  outcome.enabled = enabled_;
  if (!enabled_) return outcome;
  DratChecker checker;
  for (const auto& clause : formula_) checker.AddFormulaClause(clause);
  // An assumption-refuted solve is a refutation of formula ∧ assumptions;
  // the assumptions enter the checker as unit clauses.
  for (const sat::Lit a : last_assumptions_) {
    checker.AddFormulaClause({a});
  }
  outcome.check = checker.Check(BuildProof());
  outcome.ok =
      outcome.check.ok && !g_force_failure.load(std::memory_order_relaxed);
  return outcome;
}

CnfProofResult SolveCnfWithProof(const sat::CnfInstance& cnf,
                                 bool use_preprocessor) {
  CnfProofResult result;
  // The preprocessing switch is sampled at construction; scope it.
  const bool old_pp = sat::SatPreprocessingEnabled();
  sat::SetSatPreprocessingEnabled(use_preprocessor);
  CertifyingSolver solver(/*enabled=*/true);
  sat::SetSatPreprocessingEnabled(old_pp);

  while (solver.NumVars() < cnf.num_vars) solver.NewVar();
  for (const auto& clause : cnf.clauses) solver.AddClause(clause);
  result.status = solver.Solve();
  if (result.status == sat::SolveStatus::kSat) {
    result.model.resize(static_cast<size_t>(cnf.num_vars));
    for (sat::Var v = 0; v < cnf.num_vars; ++v) {
      result.model[static_cast<size_t>(v)] = solver.ModelValue(v);
    }
  } else if (result.status == sat::SolveStatus::kUnsat) {
    result.proof = solver.BuildProof();
    CertifyOutcome outcome = solver.CertifyLastUnsat();
    result.check = std::move(outcome.check);
    result.certified = outcome.ok;
  }
  return result;
}

}  // namespace arbiter::proof
