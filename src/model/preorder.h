#ifndef ARBITER_MODEL_PREORDER_H_
#define ARBITER_MODEL_PREORDER_H_

#include <functional>
#include <vector>

#include "model/model_set.h"

/// \file preorder.h
/// Total pre-orders ≤ψ over the interpretation space, and the Min
/// operation from the paper's characterization theorems:
///
///   Min(S, ≤ψ) = { I ∈ S : ¬∃ I' ∈ S. I' <ψ I }.
///
/// A total pre-order is represented by a rank function: I ≤ J iff
/// rank(I) <= rank(J).  Every total pre-order over a finite space has
/// such a representation, and all of the paper's concrete assignments
/// (dist, odist, wdist) arrive naturally as ranks.

namespace arbiter {

/// Rank function over interpretation bitmasks; smaller is closer.
using RankFn = std::function<double(uint64_t)>;

/// A materialized total pre-order over all 2^n interpretations.
class TotalPreorder {
 public:
  /// Materializes rank(I) for all I over n terms (n <= kMaxEnumTerms).
  /// Large spaces are filled through the thread pool, so `rank` must be
  /// safe to call concurrently (all assignments in this library are
  /// pure reads).  The materialized ranks are identical at any thread
  /// count: each slot is written exactly once from its own index.
  TotalPreorder(int num_terms, const RankFn& rank);

  int num_terms() const { return num_terms_; }

  double Rank(uint64_t bits) const { return ranks_[bits]; }

  /// I ≤ J.
  bool Leq(uint64_t i, uint64_t j) const { return ranks_[i] <= ranks_[j]; }
  /// I < J  (I ≤ J and not J ≤ I).
  bool Less(uint64_t i, uint64_t j) const { return ranks_[i] < ranks_[j]; }
  /// I ≈ J (equally ranked).
  bool Equiv(uint64_t i, uint64_t j) const { return ranks_[i] == ranks_[j]; }

  /// Min(S, ≤): the subset of S with no strictly smaller element in S.
  ModelSet MinOf(const ModelSet& s) const;

 private:
  int num_terms_;
  std::vector<double> ranks_;
};

/// One-shot Min(S, rank) without materializing the full space.
ModelSet MinBy(const ModelSet& s, const RankFn& rank);

/// Integer-rank variant to avoid double rounding for distance ranks.
/// Runs on the thread pool for large candidate sets, so `rank` must be
/// safe to call concurrently.  Results are bit-identical to the serial
/// scan at any thread count.
ModelSet MinByInt(const ModelSet& s,
                  const std::function<int64_t(uint64_t)>& rank);

/// A rank function that may prune: rank(I, bound) must return the
/// exact rank of I whenever that rank is < bound, and may return any
/// value >= bound otherwise (aborting its scan early).  Ranks must be
/// < INT64_MAX.  The bounded distance kernels in distance.h satisfy
/// this contract directly.
using BoundedRankFn = std::function<int64_t(uint64_t, int64_t)>;

/// Pruned (and, for large candidate sets, parallel) argmin:
/// Min(S, rank) where candidates are scored against a running
/// incumbent so hopeless candidates abort early (branch-and-bound).
/// Workers share the incumbent through an atomic, but a candidate is
/// only ever pruned when its exact rank provably exceeds the final
/// minimum, so the result — including ties, in sorted order — is
/// bit-identical to the serial scan at any thread count.  `rank` must
/// be safe to call concurrently.
ModelSet MinByIntBounded(const ModelSet& s, const BoundedRankFn& rank);

}  // namespace arbiter

#endif  // ARBITER_MODEL_PREORDER_H_
