// Interactive postulate explorer: prints, for a chosen operator, which
// of the 22 postulates (R1-R6, U1-U8, A1-A8) hold exhaustively over a
// small vocabulary, with a concrete counterexample for each failure.
//
// Usage:  ./build/examples/postulate_explorer [operator] [num_terms]
//         ./build/examples/postulate_explorer dalal 2
//         ./build/examples/postulate_explorer            (lists operators)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "change/registry.h"
#include "postulates/checker.h"

int main(int argc, char** argv) {
  using namespace arbiter;

  if (argc < 2) {
    std::printf("registered operators:\n");
    for (const std::string& name : RegisteredOperatorNames()) {
      std::printf("  %s\n", name.c_str());
    }
    std::printf("usage: %s <operator> [num_terms=2]\n", argv[0]);
    return 0;
  }

  const std::string name = argv[1];
  const int num_terms = argc > 2 ? std::atoi(argv[2]) : 2;
  auto op = MakeOperator(name);
  if (!op.ok()) {
    std::fprintf(stderr, "%s\n", op.status().ToString().c_str());
    return 1;
  }
  if (num_terms < 1 || num_terms > 3) {
    std::fprintf(stderr, "num_terms must be 1..3 for exhaustive checks\n");
    return 1;
  }

  std::printf("operator %s (intended family: %s), exhaustive over %d "
              "terms\n\n",
              (*op)->name().c_str(), OperatorFamilyName((*op)->family()),
              num_terms);
  PostulateChecker checker(*op, num_terms);
  int satisfied = 0;
  for (const ComplianceEntry& entry : checker.ComplianceMatrix()) {
    if (entry.satisfied) {
      std::printf("  %-3s holds     %s\n",
                  PostulateName(entry.postulate).c_str(),
                  PostulateStatement(entry.postulate).c_str());
      ++satisfied;
    } else {
      std::printf("  %-3s FAILS     %s\n",
                  PostulateName(entry.postulate).c_str(),
                  entry.counterexample->Describe().c_str());
    }
  }
  std::printf("\n%d of %zu postulates satisfied (%llu operator calls)\n",
              satisfied, AllPostulates().size(),
              static_cast<unsigned long long>(checker.num_change_calls()));
  return 0;
}
