// Fuzz-style robustness tests: the parser must never crash and must
// either succeed or return InvalidArgument on arbitrary input; printer
// round trips must hold on random ASTs; the SAT pipeline must agree
// with brute force on deep random formulas.

#include <gtest/gtest.h>

#include <string>

#include "enc/tseitin.h"
#include "logic/generator.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "logic/semantics.h"
#include "logic/simplify.h"
#include "sat/all_sat.h"
#include "sat/solver.h"
#include "util/random.h"

namespace arbiter {
namespace {

TEST(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(0xF00D);
  const std::string alphabet = "abAB01 ()&|!~^<->_'x  ";
  for (int round = 0; round < 2000; ++round) {
    int len = static_cast<int>(rng.NextBelow(24));
    std::string input;
    for (int i = 0; i < len; ++i) {
      input.push_back(alphabet[rng.NextBelow(alphabet.size())]);
    }
    Vocabulary vocab;
    Result<Formula> result = Parse(input, &vocab);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
          << "input: \"" << input << "\"";
    } else {
      // Whatever parsed must evaluate without issue.
      EXPECT_LE(result->MaxVar(), vocab.size() - 1);
      if (vocab.size() <= kMaxEnumTerms && vocab.size() >= 1) {
        IsSatisfiable(*result, vocab.size());
      }
    }
  }
}

TEST(ParserFuzzTest, RandomAstRoundTrips) {
  Rng rng(0xBEEF);
  RandomFormulaOptions options;
  options.num_terms = 6;
  options.max_depth = 7;
  for (int round = 0; round < 300; ++round) {
    Formula original = RandomFormula(&rng, options);
    Vocabulary vocab = Vocabulary::Synthetic(6);
    std::string text = ToString(original, vocab);
    Result<Formula> reparsed = Parse(text, &vocab, ParseMode::kStrict);
    ASSERT_TRUE(reparsed.ok())
        << "printed form unparseable: " << text << " ("
        << reparsed.status().ToString() << ")";
    EXPECT_TRUE(AreEquivalent(original, *reparsed, 6))
        << "round trip changed semantics: " << text;
  }
}

TEST(PipelineFuzzTest, TseitinAllSatAgreesOnDeepFormulas) {
  Rng rng(0xCAFE);
  RandomFormulaOptions options;
  options.num_terms = 6;
  options.max_depth = 9;
  options.leaf_prob = 0.25;
  for (int round = 0; round < 60; ++round) {
    Formula f = RandomFormula(&rng, options);
    sat::Solver solver;
    enc::TseitinEncoder encoder(&solver);
    encoder.ReserveInputVars(6);
    encoder.Assert(f);
    sat::AllSatOptions as;
    as.num_project = 6;
    EXPECT_EQ(sat::CollectAllSat(&solver, as), EnumerateModels(f, 6))
        << "round " << round;
  }
}

TEST(PipelineFuzzTest, NnfTseitinComposition) {
  // Encoding the NNF must give the same projected models as encoding
  // the original.
  Rng rng(0xD00F);
  RandomFormulaOptions options;
  options.num_terms = 5;
  options.max_depth = 7;
  for (int round = 0; round < 60; ++round) {
    Formula f = RandomFormula(&rng, options);
    std::vector<uint64_t> expected = EnumerateModels(f, 5);
    sat::Solver solver;
    enc::TseitinEncoder encoder(&solver);
    encoder.ReserveInputVars(5);
    encoder.Assert(Nnf(f));
    sat::AllSatOptions as;
    as.num_project = 5;
    EXPECT_EQ(sat::CollectAllSat(&solver, as), expected) << round;
  }
}

}  // namespace
}  // namespace arbiter
