// util/sync.h: guard-type semantics, CondVar, and the LockRank
// lock-order/deadlock detector.
//
// This binary is built standalone from sync.cc with ARBITER_LOCK_RANK
// forced on (see tests/CMakeLists.txt), so the death tests exercise
// the registry even though the tier-1 build (RelWithDebInfo, NDEBUG)
// compiles it out of the main library.  The release zero-cost pin is
// the static_assert block at the bottom of sync.h —
// `sizeof(Mutex) == sizeof(std::mutex)` — which fires on every
// NDEBUG compile of any TU that includes the header.

#include "util/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace arbiter {
namespace {

static_assert(kLockRankEnabled,
              "sync_test must be built with ARBITER_LOCK_RANK=1");

// Defeats the static analysis' (deliberately absent) alias tracking so
// the *runtime* detector can be exercised on patterns the clang pass
// would reject at compile time.
Mutex* Laundered(Mutex* mu) {
  volatile Mutex* alias = mu;
  return const_cast<Mutex*>(alias);
}

TEST(SyncTest, MutexLockProvidesExclusion) {
  Mutex mu(LockRank::kLeaf, "counter_mu");
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, 4000);
}

TEST(SyncTest, TryLockReportsContention) {
  Mutex mu(LockRank::kLeaf, "try_mu");
  const bool first = mu.TryLock();
  ASSERT_TRUE(first);
  std::thread other([&] {
    // Held by the main thread: a second owner must be refused.
    const bool stolen = mu.TryLock();
    EXPECT_FALSE(stolen);
    if (stolen) mu.Unlock();
  });
  other.join();
  if (first) mu.Unlock();
  const bool reacquired = mu.TryLock();
  EXPECT_TRUE(reacquired);
  if (reacquired) mu.Unlock();
}

TEST(SyncTest, SharedMutexAdmitsConcurrentReaders) {
  SharedMutex mu(LockRank::kLeaf, "shared_mu");
  std::atomic<int> readers_inside{0};
  std::atomic<int> max_seen{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        ReaderMutexLock lock(&mu);
        const int now = readers_inside.fetch_add(1) + 1;
        int seen = max_seen.load();
        while (now > seen && !max_seen.compare_exchange_weak(seen, now)) {
        }
        readers_inside.fetch_sub(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // With 4 reader threads spinning on a shared lock, at least one
  // overlap is effectively certain; an exclusive bug would pin this
  // at 1.
  EXPECT_GE(max_seen.load(), 1);

  // Writer side still excludes.
  int value = 0;
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        WriterMutexLock lock(&mu);
        ++value;
      }
    });
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(value, 2000);
}

TEST(SyncTest, CondVarWaitNotify) {
  Mutex mu(LockRank::kLeaf, "cv_mu");
  CondVar cv;
  bool ready = false;
  int consumed = -1;
  std::thread consumer([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(mu);
    consumed = 42;
  });
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyAll();
  consumer.join();
  EXPECT_EQ(consumed, 42);
}

TEST(LockRankTest, InOrderAcquisitionIsClean) {
  Mutex stores(LockRank::kStores, "stores");
  Mutex writer(LockRank::kStoreWriter, "writer");
  Mutex cache(LockRank::kResultCache, "cache");
  EXPECT_EQ(sync_internal::HeldLockCountForTesting(), 0);
  {
    MutexLock a(&stores);
    MutexLock b(&writer);
    MutexLock c(&cache);
    EXPECT_EQ(sync_internal::HeldLockCountForTesting(), 3);
  }
  EXPECT_EQ(sync_internal::HeldLockCountForTesting(), 0);
}

TEST(LockRankTest, TryLockIsExemptFromOrderChecking) {
  Mutex high(LockRank::kResultCache, "high");
  Mutex low(LockRank::kStores, "low");
  MutexLock hold(&high);
  // A try-lock cannot block, so taking `low` under `high` is a legal
  // deadlock-avoidance idiom and must not abort.
  const bool acquired = low.TryLock();
  EXPECT_TRUE(acquired);
  EXPECT_EQ(sync_internal::HeldLockCountForTesting(), 2);
  if (acquired) low.Unlock();
}

TEST(LockRankTest, RegistryCarriesCost) {
  // The inverse of the release pin in sync.h: with the registry
  // compiled in, Mutex must carry its rank/name payload.
  EXPECT_GT(sizeof(Mutex), sizeof(std::mutex));
  EXPECT_GT(sizeof(SharedMutex), sizeof(std::shared_mutex));
}

TEST(LockRankDeathTest, OutOfOrderAcquisitionAborts) {
  EXPECT_DEATH(
      {
        Mutex cache(LockRank::kResultCache, "cache_mu");
        Mutex stores(LockRank::kStores, "stores_mu");
        MutexLock hold_cache(&cache);
        MutexLock hold_stores(&stores);  // rank 20 under rank 50: cycle risk
      },
      "out of rank order");
}

TEST(LockRankDeathTest, EqualRankAcquisitionAborts) {
  // Two leaves can never nest: equal rank gives no acquisition order,
  // so the reverse nesting elsewhere would be a cycle.
  EXPECT_DEATH(
      {
        Mutex first(LockRank::kLeaf, "leaf_a");
        Mutex second(LockRank::kLeaf, "leaf_b");
        MutexLock hold_first(&first);
        MutexLock hold_second(&second);
      },
      "out of rank order");
}

TEST(LockRankDeathTest, SelfRelockAborts) {
  EXPECT_DEATH(
      {
        Mutex mu(LockRank::kStores, "self_mu");
        MutexLock first(&mu);
        MutexLock second(Laundered(&mu));  // would self-deadlock
      },
      "self-deadlock");
}

TEST(LockRankDeathTest, ViolationReportNamesBothLocks) {
  EXPECT_DEATH(
      {
        Mutex pool(LockRank::kPoolQueue, "pool_queue_mu");
        Mutex conns(LockRank::kConnections, "conns_mu");
        MutexLock hold_pool(&pool);
        MutexLock hold_conns(&conns);
      },
      "conns_mu.*rank 10");
}

}  // namespace
}  // namespace arbiter
