// A tiny interactive shell over the BeliefStore — the "database" face
// of the library.  Reads commands from stdin, one per line:
//
//   define <name> <formula>          create/replace a belief base
//   <op> <name> <formula>            change a base in place, where <op>
//                                    is any operator: dalal, satoh,
//                                    weber, borgida, winslett, forbus,
//                                    revesz-max, revesz-sum,
//                                    arbitration-max, two-sided-dalal...
//   ask <name> <formula>             entailment query
//   consistent <name> <formula>      consistency query
//   if <name> <antecedent> ? <consequent>   counterfactual (update)
//   explain <op> <name> <formula>    show the operator's decision trace
//   undo <name>                      revert the last change
//   show                             dump all bases
//   quit
//
// Try:
//   printf 'define jury g & a\narbitration-max jury !a\nshow\nquit\n' |
//       ./build/examples/belief_repl

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "change/explain.h"
#include "change/registry.h"
#include "kb/knowledge_base.h"
#include "logic/parser.h"
#include "store/belief_store.h"

namespace {

// Splits "name rest-of-line" into the name and the remainder.
bool SplitHead(const std::string& input, std::string* head,
               std::string* rest) {
  std::istringstream in(input);
  if (!(in >> *head)) return false;
  std::getline(in, *rest);
  size_t start = rest->find_first_not_of(' ');
  *rest = start == std::string::npos ? "" : rest->substr(start);
  return true;
}

}  // namespace

int main() {
  arbiter::BeliefStore store;
  std::string line;
  std::printf("arbiter belief shell — 'help' for commands\n");
  while (std::getline(std::cin, line)) {
    std::string command, rest;
    if (!SplitHead(line, &command, &rest)) continue;
    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      std::printf(
          "commands: define <n> <f> | <op> <n> <f> | ask <n> <f> | "
          "consistent <n> <f> | if <n> <a> ? <c> | undo <n> | show | "
          "quit\noperators:");
      for (const std::string& name : arbiter::RegisteredOperatorNames()) {
        std::printf(" %s", name.c_str());
      }
      std::printf("\n");
      continue;
    }
    if (command == "show") {
      std::printf("%s", store.Dump().c_str());
      continue;
    }
    std::string name, text;
    if (!SplitHead(rest, &name, &text)) {
      std::printf("error: expected a base name\n");
      continue;
    }
    arbiter::Status status;
    if (command == "define") {
      status = store.Define(name, text);
    } else if (command == "undo") {
      status = store.Undo(name);
    } else if (command == "ask") {
      arbiter::Result<bool> r = store.Entails(name, text);
      if (r.ok()) {
        std::printf("%s\n", *r ? "yes" : "no");
        continue;
      }
      status = r.status();
    } else if (command == "consistent") {
      arbiter::Result<bool> r = store.ConsistentWith(name, text);
      if (r.ok()) {
        std::printf("%s\n", *r ? "yes" : "no");
        continue;
      }
      status = r.status();
    } else if (command == "if") {
      size_t qmark = text.find('?');
      if (qmark == std::string::npos) {
        std::printf("error: counterfactual needs '<antecedent> ? "
                    "<consequent>'\n");
        continue;
      }
      arbiter::Result<bool> r = store.Counterfactual(
          name, text.substr(0, qmark), text.substr(qmark + 1));
      if (r.ok()) {
        std::printf("%s\n", *r ? "yes" : "no");
        continue;
      }
      status = r.status();
    } else if (command == "explain") {
      // rest was split as "<op>" -> name, "<base> <formula>" -> text.
      std::string base, formula;
      if (!SplitHead(text, &base, &formula)) {
        std::printf("error: explain <op> <base> <formula>\n");
        continue;
      }
      arbiter::Result<arbiter::KnowledgeBase> kb = store.Get(base);
      if (!kb.ok()) {
        std::printf("error: %s\n", kb.status().ToString().c_str());
        continue;
      }
      // Parse the evidence over a scratch copy of the vocabulary so a
      // failed parse cannot half-grow the store's terms.
      arbiter::Vocabulary vocab = store.vocabulary();
      arbiter::Result<arbiter::Formula> mu = arbiter::Parse(formula, &vocab);
      if (!mu.ok()) {
        std::printf("error: %s\n", mu.status().ToString().c_str());
        continue;
      }
      arbiter::KnowledgeBase evidence(*mu, vocab.size());
      arbiter::KnowledgeBase base_kb(kb->formula(), vocab.size());
      arbiter::Result<arbiter::ChangeExplanation> explanation =
          arbiter::ExplainChange(name, base_kb.models(),
                                 evidence.models());
      if (!explanation.ok()) {
        std::printf("error: %s\n",
                    explanation.status().ToString().c_str());
        continue;
      }
      std::printf("%s", explanation->ToString(vocab).c_str());
      continue;
    } else {
      // Treat the command as an operator name.
      status = store.Apply(name, command, text);
    }
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
    }
  }
  return 0;
}
