#ifndef ARBITER_TEST_SUPPORT_CNF_INSTANCES_H_
#define ARBITER_TEST_SUPPORT_CNF_INSTANCES_H_

#include <vector>

#include "logic/formula.h"
#include "sat/cnf.h"

/// \file cnf_instances.h
/// Shared CNF instance builders for benchmarks, fuzzing, and tests:
/// formula-to-clause conversion for the random k-CNF generator, plus
/// the crafted families (pigeonhole, BVE-heavy definition chains) used
/// to exercise the solver and preprocessor.  Lives in test_support so
/// bench/, tests/, and the fuzz harness share one copy.

namespace arbiter::test_support {

/// Flattens a k-CNF formula (an And of Or-of-literal clauses, as
/// produced by RandomKCnf) into literal vectors.
std::vector<std::vector<sat::Lit>> KCnfClauses(const Formula& f);

/// Loads a k-CNF formula into a sink that already has the variables.
void LoadKCnf(const Formula& f, sat::ClauseSink* sink);

/// The pigeonhole principle PHP(holes+1, holes): holes*(holes+1)
/// variables, unsatisfiable, resolution-hard.  Creates its own
/// variables in `sink`.
void AddPigeonhole(sat::ClauseSink* sink, int holes);

/// A BVE-heavy instance: `chains` parallel Tseitin-style definition
/// chains of length `length` (aux_{i+1} <-> aux_i AND input_i) whose
/// auxiliary variables are all eliminable by bounded variable
/// elimination, anchored by a unit on each chain head.  Satisfiable.
/// Creates its own variables in `sink`; the first `chains * length`
/// variables are the (frozen-worthy) inputs.
void AddBveChains(sat::ClauseSink* sink, int chains, int length);

}  // namespace arbiter::test_support

#endif  // ARBITER_TEST_SUPPORT_CNF_INSTANCES_H_
