#ifndef ARBITER_SOLVE_SAT_BRIDGE_H_
#define ARBITER_SOLVE_SAT_BRIDGE_H_

#include <cstdint>
#include <vector>

#include "logic/formula.h"
#include "sat/solver.h"

/// \file sat_bridge.h
/// Glue between the formula layer and the SAT solver, used by the
/// scalable operator implementations: variable renaming (to place ψ
/// and μ over disjoint variable blocks), formula assertion, and
/// distance-literal construction.

namespace arbiter::solve {

/// Returns f with every variable i replaced by i + offset.
Formula ShiftVars(const Formula& f, int offset);

/// True iff f is satisfiable over its variables, decided by CDCL.
bool SatIsSatisfiable(const Formula& f, int num_terms);

/// `SatIsSatisfiable` with DRAT certification: the solve runs with
/// proof recording, and an UNSAT verdict is re-checked by the
/// independent proof checker (src/proof/checker.h) before being
/// reported.  Callers gate on proof::CertificationEnabled() — this
/// function always records, so the uncertified path keeps its zero
/// overhead.
struct CertifiedSatResult {
  bool sat = false;
  /// The verdict was UNSAT, so a refutation was checked.
  bool certify_attempted = false;
  /// The independent checker accepted the recorded refutation.
  bool certified = false;
};
CertifiedSatResult SatIsSatisfiableCertified(const Formula& f,
                                             int num_terms);

/// The literals whose true-count equals dist(x, y) where x lives on
/// variables [0, n) and y on [offset, offset+n): one fresh XOR bit per
/// position, added to `solver`.
std::vector<sat::Lit> MakeDiffBits(sat::ClauseSink* sink, int num_terms,
                                   int offset);

/// The literals whose true-count equals dist(x, c) for the *constant*
/// interpretation c: literal i is x_i negated iff bit i of c is set.
/// No auxiliary variables needed.
std::vector<sat::Lit> MakeConstDiffLits(int num_terms, uint64_t constant);

/// Repeats lits[i] `weights[i]` times (entries beyond the weight
/// vector repeat once; weight 0 drops the literal).  Feeding the
/// result to a cardinality counter turns a unit-metric distance bound
/// into a *weighted* Hamming bound — the trick that lets the SAT
/// backends serve non-Dalal metrics.  Weights must be >= 0 and small
/// (the totalizer is quadratic in its input size); callers enforce a
/// budget before expanding.
std::vector<sat::Lit> RepeatByWeights(const std::vector<sat::Lit>& lits,
                                      const std::vector<int64_t>& weights);

}  // namespace arbiter::solve

#endif  // ARBITER_SOLVE_SAT_BRIDGE_H_
