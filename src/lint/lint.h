#ifndef ARBITER_LINT_LINT_H_
#define ARBITER_LINT_LINT_H_

#include <string>
#include <vector>

#include "lint/diagnostic.h"
#include "store/script.h"
#include "util/status.h"

/// \file lint.h
/// arblint: a static analyzer for the belief artifacts this repository
/// ships — `.belief` scripts, DIMACS CNF knowledge bases, and weighted
/// knowledge bases — that finds broken or degenerate inputs *without
/// executing them*.
///
/// The analyzer runs a registry of checks (see AllChecks()) grounded in
/// the paper's postulates: an unsatisfiable base or evidence formula is
/// the (A2)/(A3) absorbing edge, a `change` whose evidence is already
/// entailed by the base is a revision/update no-op ((R2)/(U2)), an `if`
/// guard that is tautological or unsatisfiable makes the guarded
/// statement unconditionally taken or unreachable, and so on.
/// Satisfiability questions are decided with the SAT core, never by
/// running theory change.
///
/// On top of the single-statement checks, a path-sensitive dataflow
/// layer (cfg.h, dataflow.h, flow_checks.h) interprets scripts over an
/// abstract domain — satisfiability lattice, SAT-decided entailment
/// facts, undo-depth and model-count intervals — and contributes the
/// `flow/*` check family: unreachable statements, path-sensitive
/// redundant changes ((R2)/(U2) across joins), dead definitions,
/// undo-on-empty-history on every path, and statically decided
/// assertions.  Many diagnostics carry machine-applicable fix-its
/// (Diagnostic::fixits); ApplyAllFixIts applies them to a fixpoint.
///
/// Error-severity script diagnostics are calibrated against the
/// runtime: a script that lints with no errors parses and executes
/// without hard errors (assertions may still fail — that is what they
/// are for), and a `flow/*` error verdict agrees with every concrete
/// run (an unreachable statement never executes; an always-failing
/// assertion fails whenever it runs).  The differential fuzz harness
/// cross-checks these contracts on randomized scripts, including that
/// applying all fix-its preserves assertion outcomes.

namespace arbiter::lint {

/// What kind of artifact a file contains.
enum class InputKind {
  kBeliefScript,  ///< .belief — src/store/script.h language
  kDimacsCnf,     ///< .cnf / .dimacs — DIMACS CNF
  kWeightedKb,    ///< .wkb — weighted KB (src/kb/weighted_kb_io.h)
};

/// Maps a file path to its input kind by extension
/// (.belief | .cnf | .dimacs | .wkb); unknown extensions are an error.
Result<InputKind> InputKindForPath(const std::string& path);

/// Static metadata for one registered check.
struct CheckInfo {
  const char* id;         ///< stable id, e.g. "script/undo-empty"
  Severity severity;      ///< default severity of its diagnostics
  const char* summary;    ///< one-line description
};

/// The full check registry, in a stable order.  Every diagnostic the
/// analyzers emit carries the id and default severity of one entry.
const std::vector<CheckInfo>& AllChecks();

/// Registry lookup; nullptr for unknown ids.
const CheckInfo* FindCheck(const std::string& id);

struct LintOptions {
  /// Check ids to suppress entirely.
  std::vector<std::string> disabled_checks;

  /// dimacs/unsat runs the DPLL core only when the instance declares at
  /// most this many variables (the solver has no conflict budget).
  int dimacs_solve_max_vars = 20;

  /// Run the path-sensitive dataflow pass (the flow/* checks) on
  /// belief scripts.  It is skipped automatically when the script has
  /// statement syntax errors or blows the vocabulary capacity.
  bool enable_dataflow = true;

  /// Bounded-AllSAT enumeration cap behind the dataflow layer's
  /// model-count intervals: counts below the cap are exact, larger
  /// ones widen to [cap, 2^n].
  int allsat_model_cap = 64;

  /// Certified verdicts (arblint --certify): every UNSAT answer behind
  /// a SAT-derived diagnostic is solved with DRAT recording and
  /// re-checked by the independent proof checker (src/proof/).  A
  /// finding whose refutation fails the check is emitted downgraded
  /// one severity notch with `certified: false` in JSON/SARIF output;
  /// certified findings carry `certified: true`.  Off by default —
  /// certification re-solves with the CDCL tier (dimacs/unsat normally
  /// uses the budget-free DPLL core) and roughly doubles SAT work.
  bool certify = false;
};

/// Lints belief-script text.  Statement-level recovery: one malformed
/// line yields one diagnostic and analysis continues on the next line.
std::vector<Diagnostic> LintScriptText(const std::string& file,
                                       const std::string& text,
                                       const LintOptions& options = {});

/// Lints DIMACS CNF text.
std::vector<Diagnostic> LintDimacsText(const std::string& file,
                                       const std::string& text,
                                       const LintOptions& options = {});

/// Lints weighted-KB text (the `wkb` format of weighted_kb_io.h).
std::vector<Diagnostic> LintWeightedKbText(const std::string& file,
                                           const std::string& text,
                                           const LintOptions& options = {});

/// Dispatches on `kind`.
std::vector<Diagnostic> LintText(InputKind kind, const std::string& file,
                                 const std::string& text,
                                 const LintOptions& options = {});

/// Builds a statement-level hook for RunScript: the script text is
/// linted once up front and the hook hands each executed statement the
/// diagnostics anchored on its source line, so run reports interleave
/// lint findings with execution results.
ScriptLintHook MakeScriptLintHook(const std::string& text,
                                  const LintOptions& options = {});

/// Parse + lint + run in one go; the report's steps carry lint lines.
Result<ScriptReport> RunScriptTextLinted(const std::string& text,
                                         BeliefStore* store,
                                         const LintOptions& options = {});

/// Outcome of ApplyAllFixIts.
struct FixResult {
  std::string text;    ///< input with all applicable fix-its applied
  int applied = 0;     ///< total edits applied across iterations
  int iterations = 0;  ///< lint+apply rounds run
};

/// Lints `text`, applies every fix-it the diagnostics carry, and
/// repeats on the result until no diagnostic carries a fix-it (or
/// `max_iterations` rounds) — deleting one statement can surface a new
/// finding, so a single pass is not a fixpoint.  Overlapping edits
/// within a round are applied first-wins (see ApplyFixIts).
FixResult ApplyAllFixIts(InputKind kind, const std::string& file,
                         const std::string& text,
                         const LintOptions& options = {},
                         int max_iterations = 8);

}  // namespace arbiter::lint

#endif  // ARBITER_LINT_LINT_H_
