#ifndef ARBITER_LOGIC_SIMPLIFY_H_
#define ARBITER_LOGIC_SIMPLIFY_H_

#include "logic/formula.h"

/// \file simplify.h
/// Syntactic normal forms and rewrites.

namespace arbiter {

/// Negation normal form: eliminates →, ↔, ⊕ and pushes ¬ down to
/// literals.  The result uses only ⊤, ⊥, variables, literals, ∧, ∨.
Formula Nnf(const Formula& f);

/// Substitutes `value` (⊤ or ⊥) for variable `var` and constant-folds.
Formula Assign(const Formula& f, int var, bool value);

/// Iterated unit-style simplification: constant folding only (the
/// factories already fold; this re-folds a whole tree, useful after
/// Assign or hand-built ASTs).
Formula Fold(const Formula& f);

}  // namespace arbiter

#endif  // ARBITER_LOGIC_SIMPLIFY_H_
