#include "lint/cfg.h"

#include <algorithm>

#include "util/logging.h"

namespace arbiter::lint {

namespace {

/// Builder keeping the under-construction node list and edge helper.
struct Builder {
  std::vector<CfgNode>* nodes;

  int NewNode(CfgNode::Kind kind, const ScriptStatement* stmt,
              int top_level) {
    CfgNode node;
    node.kind = kind;
    node.stmt = stmt;
    node.is_guard =
        stmt != nullptr && stmt->kind == ScriptStatement::Kind::kConditional;
    node.top_level = top_level;
    nodes->push_back(std::move(node));
    return static_cast<int>(nodes->size()) - 1;
  }

  void AddEdge(int from, int to) {
    (*nodes)[from].succs.push_back(to);
    (*nodes)[to].preds.push_back(from);
  }

  /// Adds the node chain for one statement.  Returns the chain's entry
  /// node and appends to `outs` every node whose next out-edge must be
  /// connected to whatever follows the statement.  For a conditional,
  /// the taken edge (succ 0) is wired here; the guard itself joins
  /// `outs` so its fall-through edge (succ 1) reaches the join point.
  int AddChain(const ScriptStatement* stmt, int top_level,
               std::vector<int>* outs) {
    const int id = NewNode(CfgNode::Kind::kStatement, stmt, top_level);
    if (stmt->kind == ScriptStatement::Kind::kConditional &&
        !stmt->inner.empty()) {
      std::vector<int> inner_outs;
      const int inner = AddChain(&stmt->inner[0], top_level, &inner_outs);
      AddEdge(id, inner);        // succ 0: taken
      outs->push_back(id);       // succ 1 (added later): fall-through
      outs->insert(outs->end(), inner_outs.begin(), inner_outs.end());
    } else {
      outs->push_back(id);
    }
    return id;
  }
};

void PostOrder(const std::vector<CfgNode>& nodes, int id,
               std::vector<char>* seen, std::vector<int>* order) {
  if ((*seen)[id]) return;
  (*seen)[id] = 1;
  for (int succ : nodes[id].succs) PostOrder(nodes, succ, seen, order);
  order->push_back(id);
}

}  // namespace

Cfg Cfg::Build(BeliefScript script) {
  Cfg cfg;
  cfg.script_ = std::move(script);
  Builder b{&cfg.nodes_};

  const int entry = b.NewNode(CfgNode::Kind::kEntry, nullptr, -1);
  ARBITER_CHECK(entry == 0);
  std::vector<int> dangling = {entry};
  for (size_t i = 0; i < cfg.script_.statements.size(); ++i) {
    std::vector<int> outs;
    const int head = b.AddChain(&cfg.script_.statements[i],
                                static_cast<int>(i), &outs);
    for (int from : dangling) b.AddEdge(from, head);
    dangling = std::move(outs);
  }
  cfg.exit_ = b.NewNode(CfgNode::Kind::kExit, nullptr, -1);
  for (int from : dangling) b.AddEdge(from, cfg.exit_);

  std::vector<char> seen(cfg.nodes_.size(), 0);
  std::vector<int> post;
  PostOrder(cfg.nodes_, entry, &seen, &post);
  cfg.rpo_.assign(post.rbegin(), post.rend());
  return cfg;
}

}  // namespace arbiter::lint
