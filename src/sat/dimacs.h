#ifndef ARBITER_SAT_DIMACS_H_
#define ARBITER_SAT_DIMACS_H_

#include <string>
#include <vector>

#include "sat/types.h"
#include "util/status.h"

/// \file dimacs.h
/// DIMACS CNF reading and writing, for interoperability with external
/// SAT tooling and for snapshotting generated workloads.

namespace arbiter::sat {

/// An in-memory CNF instance.
struct CnfInstance {
  int num_vars = 0;
  std::vector<std::vector<Lit>> clauses;
};

/// Parses DIMACS CNF text ("p cnf <vars> <clauses>" header, clauses of
/// nonzero integers terminated by 0, 'c' comment lines).
Result<CnfInstance> ParseDimacs(const std::string& text);

/// Renders an instance as DIMACS CNF text.
std::string ToDimacs(const CnfInstance& instance);

}  // namespace arbiter::sat

#endif  // ARBITER_SAT_DIMACS_H_
